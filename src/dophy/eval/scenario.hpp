#pragma once

// Canonical experiment scenarios shared by benches, examples and tests, so
// every figure draws from the same parameterization (and EXPERIMENTS.md can
// describe each setting once).

#include <cstdint>
#include <string>
#include <vector>

#include "dophy/tomo/pipeline.hpp"

namespace dophy::eval {

/// Baseline parameterization: `node_count` nodes uniform in a square field
/// sized for mean radio degree ~8, sink at the corner, Bernoulli losses from
/// the distance curve, 8-attempt ARQ, 10 s data period, CTP-style routing.
[[nodiscard]] dophy::tomo::PipelineConfig default_pipeline(std::size_t node_count,
                                                           std::uint64_t seed);

/// Adds link-quality re-randomization (the routing-dynamics knob).  Larger
/// `spread` and shorter `interval_s` produce more parent churn.
void add_dynamics(dophy::tomo::PipelineConfig& config, double interval_s, double spread);

/// Switches losses to bursty Gilbert-Elliott channels.
void make_bursty(dophy::tomo::PipelineConfig& config);

/// Switches losses to smooth sinusoidal drift.
void make_drifting(dophy::tomo::PipelineConfig& config, double amplitude, double period_s);

/// Enables node churn (failure/recovery) on a fraction of the nodes.
void add_churn(dophy::tomo::PipelineConfig& config, double churn_fraction,
               double mean_up_s, double mean_down_s);

/// Enables per-packet opportunistic forwarder selection (maximum path
/// dynamics: even consecutive packets from one origin take different paths).
void add_opportunism(dophy::tomo::PipelineConfig& config, double fraction);

/// Enables chaos fault injection at `intensity` in [0, 1]: 0 disables,
/// 1 is the full F9 storm (node crashes + sink outages + link blackouts +
/// clock skew + report corruption/truncation/drop, rates scaled linearly).
/// Faults start after warm-up so routing converges first.
void add_faults(dophy::tomo::PipelineConfig& config, double intensity);

/// A labelled pipeline configuration, as listed in the summary table.
struct NamedScenario {
  std::string name;                    ///< row label (e.g. "bursty")
  dophy::tomo::PipelineConfig config;  ///< full pipeline parameterization
};

/// The six scenarios of the summary table (T1): static / dynamic / bursty /
/// drifting / churn / opportunistic, all at `node_count` nodes.
[[nodiscard]] std::vector<NamedScenario> summary_scenarios(std::size_t node_count,
                                                           std::uint64_t seed);

}  // namespace dophy::eval
