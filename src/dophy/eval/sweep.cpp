#include "dophy/eval/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "dophy/common/table.hpp"
#include "dophy/common/thread_pool.hpp"
#include "dophy/obs/json.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/span.hpp"

namespace dophy::eval {

namespace {

struct CellOutcome {
  bool owned = false;
  bool hit = false;
  std::vector<std::vector<std::string>> rows;
  double wall_seconds = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Cell-level workers that keep cells x per-sim threads at or under the
/// hardware budget.  Serial engine: whole machine; PDES: hw / sim_threads.
std::size_t cell_worker_budget(std::size_t sim_threads) {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (sim_threads <= 1) return hw;
  return std::max<std::size_t>(1, hw / sim_threads);
}

}  // namespace

ExperimentRun run_experiment(const ExperimentSpec& spec, const SweepOptions& opts) {
  if (opts.shard_count == 0 || opts.shard_index >= opts.shard_count) {
    throw std::invalid_argument("run_experiment: shard index must be < shard count");
  }
  const auto sweep_start = std::chrono::steady_clock::now();

  ExperimentRun run;
  run.spec = &spec;
  run.context.trials = opts.trials != 0 ? opts.trials : spec.default_trials;
  run.context.nodes = opts.nodes != 0 ? opts.nodes : spec.default_nodes;
  run.context.quick = opts.quick;

  auto cells = spec.make_cells(run.context);
  run.cells_total = cells.size();
  run.spec_hash = fnv1a64(spec.id);
  for (const auto& cell : cells) {
    run.spec_hash = fnv1a64(cell.key.canonical(), run.spec_hash);
  }

  // The result store is keyed on the canonical config alone; parallel-engine
  // results depend on lp_count, so sim_threads > 1 neither reads nor writes
  // it — mixing the two would poison serial replays.
  const bool cacheable = opts.sim_threads <= 1;
  if (!cacheable && opts.cache != nullptr) {
    run.cache_bypassed = true;
    run.cache_bypass_reason =
        "sim_threads > 1: parallel-engine results are lp_count-dependent";
  }

  std::vector<CellOutcome> outcomes(cells.size());
  std::vector<std::size_t> to_compute;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i % opts.shard_count != opts.shard_index) continue;
    outcomes[i].owned = true;
    ++run.cells_owned;
    if (cacheable && opts.cache != nullptr && !opts.force) {
      if (auto cached = opts.cache->load(cells[i].key)) {
        outcomes[i].hit = true;
        outcomes[i].rows = std::move(cached->rows);
        ++run.cache_hits;
        continue;
      }
    }
    to_compute.push_back(i);
  }

  static const auto computed_counter =
      dophy::obs::Registry::global().counter("eval.cells.computed");
  // Log2 buckets up to ~2^24 ms (~4.6 h per cell) so manifests can report
  // meaningful cell-time percentiles instead of decade-wide bins.
  static const auto cell_wall_ms =
      dophy::obs::Registry::global().latency_histogram("eval.cell.wall_ms", 25);

  auto compute_cell = [&](std::size_t index, dophy::common::ThreadPool* trial_pool) {
    const auto start = std::chrono::steady_clock::now();
    auto rows =
        cells[index].compute(CellContext(trial_pool, opts.sim_threads)).take_rows();
    outcomes[index].wall_seconds = seconds_since(start);
    outcomes[index].rows = std::move(rows);
    computed_counter.inc();
    const auto wall_ms = static_cast<std::uint64_t>(outcomes[index].wall_seconds * 1000.0);
    cell_wall_ms.observe(wall_ms);
    auto& spans = dophy::obs::SpanTrace::global();
    if (spans.enabled()) {
      // Cells run on wall time, not simulation time; the interval records
      // the duration with a zero origin rather than faking a sim timestamp.
      spans.interval("cell", 0, wall_ms * 1000, [&](dophy::obs::EventBuilder& b) {
        b.str("experiment", spec.id).str("cell", cells[index].label);
      });
    }
  };

  // Oversubscription guard: with per-simulation worker teams active, cap
  // cell/trial parallelism so cells x sim_threads stays within the machine.
  std::optional<dophy::common::ThreadPool> guarded;
  if (opts.sim_threads > 1) guarded.emplace(cell_worker_budget(opts.sim_threads));

  if (to_compute.size() == 1) {
    // A single miss: keep the legacy binaries' trial-level parallelism.
    compute_cell(to_compute.front(), guarded ? &*guarded : nullptr);
  } else if (!to_compute.empty()) {
    // Many misses: parallelize across cells, trials inline — nesting a trial
    // parallel_for inside a cell task on the same pool would deadlock.
    auto& pool = guarded      ? *guarded
                 : opts.pool != nullptr ? *opts.pool
                                        : dophy::common::global_pool();
    dophy::common::parallel_for(pool, to_compute.size(), [&](std::size_t j) {
      compute_cell(to_compute[j], &dophy::common::inline_executor());
    });
  }
  run.cells_computed = to_compute.size();

  if (cacheable && opts.cache != nullptr) {
    for (const std::size_t i : to_compute) {
      CachedCell entry;
      entry.experiment = spec.id;
      entry.cell = cells[i].label;
      entry.rows = outcomes[i].rows;
      entry.wall_seconds = outcomes[i].wall_seconds;
      opts.cache->store(cells[i].key, entry);
    }
  }

  for (auto& outcome : outcomes) {
    if (!outcome.owned) continue;
    for (auto& row : outcome.rows) run.rows.push_back(std::move(row));
  }
  run.wall_seconds = seconds_since(sweep_start);
  return run;
}

void print_run(std::ostream& os, const ExperimentRun& run, bool csv) {
  dophy::common::Table table(run.spec->columns);
  for (const auto& row : run.rows) {
    table.row();
    for (const auto& cell : row) table.cell(cell);
  }
  if (csv) {
    table.write_csv(os);
  } else {
    table.print(os, run.spec->title);
  }
  os << run.spec->expected;
}

dophy::obs::RunReport make_run_report(const ExperimentRun& run) {
  dophy::obs::RunReport report;
  report.bench = run.spec->output_stem;
  report.title = run.spec->title;
  report.config["trials"] = std::to_string(run.context.trials);
  report.config["nodes"] = std::to_string(run.context.nodes);
  report.config["quick"] = run.context.quick ? "1" : "0";
  dophy::obs::TableSection section;
  section.title = run.spec->title;
  section.columns = run.spec->columns;
  section.rows = run.rows;
  report.tables.push_back(std::move(section));
  return report;
}

std::string catalog_markdown(const ExperimentRegistry& registry) {
  std::string out;
  out += "| id | figure | axes | trials | nodes | output | paper claim |\n";
  out += "|---|---|---|---|---|---|---|\n";
  for (const auto& spec : registry.all()) {
    out += "| `" + spec.id + "` | " + spec.figure + " | " + spec.axes + " | " +
           std::to_string(spec.default_trials) + " | " + std::to_string(spec.default_nodes) +
           " | `" + spec.output_stem + ".{txt,csv,json}` | " + spec.claim + " |\n";
  }
  return out;
}

std::string catalog_text(const ExperimentRegistry& registry) {
  dophy::common::Table table({"id", "figure", "cells-axes", "trials", "nodes", "output"});
  for (const auto& spec : registry.all()) {
    table.row()
        .cell(spec.id)
        .cell(spec.figure)
        .cell(spec.axes)
        .cell(spec.default_trials)
        .cell(spec.default_nodes)
        .cell(spec.output_stem);
  }
  std::string out;
  {
    std::ostringstream os;
    table.print(os, "Registered experiments (" + std::to_string(registry.size()) + ")");
    out = os.str();
  }
  return out;
}

std::string manifest_json(const std::vector<ExperimentRun>& runs,
                          const SweepOptions& opts,
                          const dophy::obs::MetricsSnapshot& metrics,
                          double wall_seconds) {
  dophy::obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(std::uint64_t{1});
  w.key("git").value(dophy::obs::git_describe());
  w.key("version_tag")
      .value(opts.cache != nullptr ? std::string_view(opts.cache->version_tag())
                                   : std::string_view("uncached"));
  w.key("quick").value(opts.quick);
  w.key("force").value(opts.force);
  w.key("shard_index").value(static_cast<std::uint64_t>(opts.shard_index));
  w.key("shard_count").value(static_cast<std::uint64_t>(opts.shard_count));
  w.key("wall_seconds").value(wall_seconds);

  // Effective thread budget: how the machine was split between cell-level
  // and per-simulation parallelism for this run.
  {
    const std::size_t sim = std::max<std::size_t>(1, opts.sim_threads);
    const std::size_t cell_workers =
        sim > 1 ? cell_worker_budget(sim)
                : (opts.pool != nullptr ? opts.pool->worker_count()
                                        : dophy::common::global_pool().worker_count());
    w.key("threads").begin_object();
    w.key("hardware").value(static_cast<std::uint64_t>(
        std::max<std::size_t>(1, std::thread::hardware_concurrency())));
    w.key("sim_threads").value(static_cast<std::uint64_t>(sim));
    w.key("cell_workers").value(static_cast<std::uint64_t>(cell_workers));
    w.end_object();
  }

  w.key("experiments").begin_array();
  for (const auto& run : runs) {
    w.begin_object();
    w.key("id").value(run.spec->id);
    w.key("spec_hash").value(run.spec_hash);
    w.key("trials").value(static_cast<std::uint64_t>(run.context.trials));
    w.key("nodes").value(static_cast<std::uint64_t>(run.context.nodes));
    w.key("cells_total").value(static_cast<std::uint64_t>(run.cells_total));
    w.key("cells_owned").value(static_cast<std::uint64_t>(run.cells_owned));
    w.key("cache_hits").value(static_cast<std::uint64_t>(run.cache_hits));
    w.key("cells_computed").value(static_cast<std::uint64_t>(run.cells_computed));
    if (run.cache_bypassed) {
      w.key("cache_bypassed").value(true);
      w.key("cache_bypass_reason").value(run.cache_bypass_reason);
    }
    w.key("wall_seconds").value(run.wall_seconds);
    w.end_object();
  }
  w.end_array();

  if (opts.cache != nullptr) {
    const auto& stats = opts.cache->stats();
    w.key("cache").begin_object();
    w.key("dir").value(opts.cache->dir());
    w.key("hits").value(stats.hits);
    w.key("misses").value(stats.misses);
    w.key("stores").value(stats.stores);
    w.key("corrupt").value(stats.corrupt);
    w.end_object();
  }

  // Cell-time percentiles from the log2 histogram (computed cells only).
  const auto cell_wall = metrics.histograms.find("eval.cell.wall_ms");
  if (cell_wall != metrics.histograms.end() && cell_wall->second.total > 0) {
    w.key("cell_wall_ms").begin_object();
    w.key("count").value(cell_wall->second.total);
    w.key("mean").value(cell_wall->second.mean());
    w.key("p50").value(cell_wall->second.quantile(0.50));
    w.key("p90").value(cell_wall->second.quantile(0.90));
    w.key("p99").value(cell_wall->second.quantile(0.99));
    w.end_object();
  }

  w.end_object();

  // The snapshot is already JSON; splice it in verbatim before the root's
  // closing brace.
  std::string out = w.take();
  out.pop_back();  // root '}'
  out += ",\"metrics\":" + metrics.to_json() + "}\n";
  return out;
}

}  // namespace dophy::eval
