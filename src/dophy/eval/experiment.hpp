#pragma once

// Declarative experiment registry.
//
// Every reproduced figure/table is an ExperimentSpec: an id, the paper claim
// it tests, a grid of cells (one per sweep point, each a config mutation +
// a compute function that renders its table rows), and the legacy output
// naming.  Specs are registered in src/dophy/eval/experiments/*.cpp and
// executed by the sweep engine (sweep.hpp) through the `dophy_bench` CLI —
// this replaces the per-figure bench/fig_* binaries with one driver that
// shares sharding, caching and report emission.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "dophy/common/table.hpp"
#include "dophy/eval/cache.hpp"
#include "dophy/eval/runner.hpp"

namespace dophy::common {
class ThreadPool;
}

namespace dophy::eval {

/// Resolved sweep-wide parameters handed to ExperimentSpec::make_cells.
struct SweepContext {
  std::size_t trials = 3;   ///< Monte-Carlo trials per cell
  std::size_t nodes = 80;   ///< network size where applicable
  bool quick = false;       ///< cut simulated durations ~4x for smoke runs
};

/// Rows a cell contributes to the experiment's table, built with the same
/// formatting as dophy::common::Table so cached and fresh output are
/// byte-identical.
class RowSet {
 public:
  /// Fluent single-row builder appended to by `cell` calls.
  class RowRef {
   public:
    /// Appends a preformatted cell.
    RowRef& cell(const std::string& value);
    /// Appends a string-literal cell.
    RowRef& cell(const char* value);
    /// Appends a fixed-precision floating-point cell.
    RowRef& cell(double value, int precision = 4);
    /// Appends an integer cell.
    template <typename T>
      requires std::integral<T>
    RowRef& cell(T value) {
      return cell(std::to_string(value));
    }

   private:
    friend class RowSet;
    explicit RowRef(std::vector<std::string>& row) : row_(&row) {}
    std::vector<std::string>* row_;
  };

  /// Starts a new row.
  RowRef row();

  /// All rows built so far, in insertion order.
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  /// Moves the rows out (the RowSet is empty afterwards).
  [[nodiscard]] std::vector<std::vector<std::string>> take_rows() {
    return std::move(rows_);
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Execution-time services handed to a cell's compute function.
class CellContext {
 public:
  /// Builds a context whose trial batches run on `trial_pool` (null = the
  /// process-global pool).  The sweep engine passes the inline executor when
  /// the cell itself already runs on a pool worker.  `sim_threads` > 1
  /// switches every pipeline run onto the PDES engine with that many LPs.
  explicit CellContext(dophy::common::ThreadPool* trial_pool = nullptr,
                       std::size_t sim_threads = 0)
      : trial_pool_(trial_pool), sim_threads_(sim_threads) {}

  /// Monte-Carlo batch runner; same contract as eval::run_trials but routed
  /// through this cell's trial pool.
  [[nodiscard]] MultiTrialResult run_trials(const dophy::tomo::PipelineConfig& base,
                                            std::size_t trials, std::uint64_t base_seed,
                                            bool keep_runs = false) const;

  /// Pool trial batches execute on (null = global pool).
  [[nodiscard]] dophy::common::ThreadPool* trial_pool() const noexcept {
    return trial_pool_;
  }

  /// Per-simulation thread budget (0 or 1 = serial engine).
  [[nodiscard]] std::size_t sim_threads() const noexcept { return sim_threads_; }

 private:
  dophy::common::ThreadPool* trial_pool_;
  std::size_t sim_threads_ = 0;
};

/// One grid cell: a sweep point with its content-address and compute.
struct Cell {
  std::string label;   ///< axis point, e.g. "measure_s=1200"
  CanonicalKey key;    ///< content-address material (config + seeds + identity)
  std::function<RowSet(const CellContext&)> compute;  ///< renders the cell's rows
};

/// One declarative experiment (a reproduced figure/table).
struct ExperimentSpec {
  std::string id;           ///< stable id, e.g. "f5-accuracy-packets"
  std::string figure;       ///< paper figure/table tag: F1..F9, T1, A1..A5
  std::string claim;        ///< the abstract's claim (or ablation question)
  std::string axes;         ///< human-readable sweep axes for the catalog
  std::string title;        ///< table title (kept identical to the legacy binary)
  std::string output_stem;  ///< legacy output basename, e.g. "fig_accuracy_packets"
  std::size_t default_trials = 3;  ///< trials when the CLI gives no --trials
  std::size_t default_nodes = 80;  ///< nodes when the CLI gives no --nodes
  std::vector<std::string> columns;  ///< table header
  std::string expected;     ///< "Expected shape" trailer printed after the table
  /// Builds the sweep grid for the resolved context.  Must be cheap and
  /// deterministic: it runs for `--list`, key computation and sharding.
  std::function<std::vector<Cell>(const SweepContext&)> make_cells;
};

/// Keyed collection of ExperimentSpecs in registration order.
class ExperimentRegistry {
 public:
  /// The process-wide registry with every built-in experiment registered.
  [[nodiscard]] static ExperimentRegistry& builtin();

  /// Registers `spec`; throws std::invalid_argument on a duplicate id or
  /// output stem, or on a spec without make_cells.
  void add(ExperimentSpec spec);

  /// Finds a spec by id or by legacy output stem; null when absent.
  [[nodiscard]] const ExperimentSpec* find(std::string_view id_or_stem) const;

  /// Every spec in registration (catalog) order.
  [[nodiscard]] const std::vector<ExperimentSpec>& all() const noexcept { return specs_; }

  /// Number of registered specs.
  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

 private:
  std::vector<ExperimentSpec> specs_;
};

/// Registers the built-in F1–F9 / T1 / A1–A5 experiments into `registry`
/// (used by ExperimentRegistry::builtin; callable directly in tests).
void register_builtin_experiments(ExperimentRegistry& registry);

/// Canonical key for a cell that runs pipeline trials: the full canonical
/// config plus experiment/cell identity, trial count and seed range.
[[nodiscard]] CanonicalKey pipeline_cell_key(std::string_view experiment_id,
                                             std::string_view cell_label,
                                             const dophy::tomo::PipelineConfig& config,
                                             std::size_t trials, std::uint64_t base_seed);

}  // namespace dophy::eval
