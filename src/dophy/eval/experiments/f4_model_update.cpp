// F4 — Probability-model update-policy ablation.
//
// Claim (abstract): "Dophy periodically updates the probability model to
// minimize the overall transmission overhead."
//
// A drifting network shifts the symbol distribution over time.  We compare:
// never updating (bootstrap model forever), periodic updates at several
// cadences, and the KL-triggered adaptive policy.  "Total overhead" counts
// both the measurement bytes carried in data packets over the air and the
// bytes flooded to disseminate models.

#include <string>
#include <vector>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

struct Policy {
  std::string label;
  dophy::tomo::ModelUpdateConfig::Policy policy;
  double interval_s;
};

const std::vector<Policy>& policies() {
  static const std::vector<Policy> list = {
      {"static(never)", dophy::tomo::ModelUpdateConfig::Policy::kStatic, 120.0},
      {"periodic-60s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 60.0},
      {"periodic-240s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 240.0},
      {"periodic-960s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 960.0},
      {"adaptive-kl", dophy::tomo::ModelUpdateConfig::Policy::kAdaptive, 120.0},
  };
  return list;
}

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, const Policy& policy,
                                        bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 70);
  dophy::eval::make_drifting(cfg, 0.08, 900.0);
  cfg.net.traffic.data_interval_s = 5.0;  // busier network: updates matter
  cfg.dophy.update.policy = policy.policy;
  cfg.dophy.update.check_interval_s = policy.interval_s;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_f4_model_update(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f4-model-update";
  spec.figure = "F4";
  spec.claim =
      "Periodically updating the probability model minimizes the overall "
      "transmission overhead under drift";
  spec.axes = "update policy in {static, periodic-60s/240s/960s, adaptive-kl}";
  spec.title = "F4: model-update policy vs total transmission overhead";
  spec.output_stem = "fig_model_update";
  spec.columns = {"policy", "updates", "bits_per_hop", "data_overhead_kb",
                  "flood_kb", "total_kb", "mae"};
  spec.expected =
      "\nExpected shape: never updating leaves bits/hop at the bootstrap-model\n"
      "ceiling; very frequent updates buy little extra coding efficiency but\n"
      "pay a growing flood bill; the adaptive policy lands near the best total\n"
      "overhead without hand-tuning the period.  MAE is identical by design:\n"
      "decoding is exact under every model, so updates trade overhead only.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (std::size_t i = 0; i < policies().size(); ++i) {
      const auto& grid_policy = policies()[i];
      Cell cell;
      cell.label = "policy=" + grid_policy.label;
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, grid_policy, ctx.quick),
                                   ctx.trials, /*base_seed=*/700);
      cell.compute = [nodes = ctx.nodes, i, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto& policy = policies()[i];
        const auto cfg = cell_config(nodes, policy, quick);
        const auto agg = cc.run_trials(cfg, trials, 700);
        const double data_kb = agg.measurement_air_kb.mean();
        const double flood_kb = agg.control_flood_kb.mean();
        RowSet rows;
        rows.row()
            .cell(policy.label)
            .cell(agg.model_updates.mean(), 1)
            .cell(agg.bits_per_hop.mean(), 2)
            .cell(data_kb, 1)
            .cell(flood_kb, 1)
            .cell(data_kb + flood_kb, 1)
            .cell(agg.method("dophy").mae.mean(), 4);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
