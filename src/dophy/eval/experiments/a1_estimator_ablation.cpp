// A1 — Sink-estimator design ablation (DESIGN.md design-choice bench).
//
// Compares the cumulative censored-geometric MLE, the count-decay tracker at
// two decay levels, and the Beta-prior Bayesian posterior mean, on a static
// network and on a drifting one.  Shows why the library defaults to the
// plain MLE for stationary links and decay ~0.85 for moving ones.

#include <string>
#include <vector>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

struct Variant {
  std::string label;
  double decay;
  double prior_a;
  double prior_b;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> list = {
      {"mle-cumulative", 1.0, 0.0, 0.0},
      {"tracker-d0.85", 0.85, 0.0, 0.0},
      {"tracker-d0.60", 0.60, 0.0, 0.0},
      {"bayes-beta(2,0.4)", 1.0, 2.0, 0.4},
      {"bayes+track-d0.85", 0.85, 2.0, 0.4},
  };
  return list;
}

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, const Variant& v,
                                        bool drifting, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 140);
  if (drifting) {
    // Re-randomizing link qualities plus RECENT-truth scoring: the fair
    // target for a tracker is what the link does now, not the window
    // average (which would structurally favor the cumulative MLE).
    dophy::eval::add_dynamics(cfg, 600.0, 0.2);
    cfg.truth_tail_fraction = 0.25;
  }
  cfg.dophy.tracker_decay = v.decay;
  cfg.dophy.prior_successes = v.prior_a;
  cfg.dophy.prior_failures = v.prior_b;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 2400.0;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_a1_estimator_ablation(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a1-estimator-ablation";
  spec.figure = "A1";
  spec.claim =
      "Ablation: cumulative MLE wins on stationary links, decay ~0.85 tracks "
      "moving ones, the Beta prior tightens thin links";
  spec.axes = "estimator variant x {static, drifting}";
  spec.title = "A1: sink estimator variants, static vs drifting links";
  spec.output_stem = "fig_estimator_ablation";
  spec.columns = {"estimator", "static_mae", "static_p90", "drift_mae",
                  "drift_p90", "drift_spearman"};
  spec.expected =
      "\nExpected shape: the cumulative MLE wins on static links (uses all\n"
      "data) but anchors to stale history when link qualities re-randomize\n"
      "and truth is scored on the recent window; moderate decay trades a\n"
      "little static accuracy for tracking; the Beta prior mainly tightens\n"
      "thin links (tail/p90).\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (std::size_t i = 0; i < variants().size(); ++i) {
      const auto& grid_variant = variants()[i];
      Cell cell;
      cell.label = "estimator=" + grid_variant.label;
      // The cell runs two pipelines (static and drifting); the drifting
      // config is folded into the key as a nested canonical hash.
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, grid_variant, false, ctx.quick),
                                   ctx.trials, /*base_seed=*/1400);
      CanonicalKey drift_key;
      canonicalize_into(cell_config(ctx.nodes, grid_variant, true, ctx.quick), drift_key);
      cell.key.set("drift.canonical_hash", drift_key.hash());
      cell.compute = [nodes = ctx.nodes, i, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto& v = variants()[i];
        const auto st =
            cc.run_trials(cell_config(nodes, v, false, quick), trials, 1400);
        const auto dr =
            cc.run_trials(cell_config(nodes, v, true, quick), trials, 1400);
        RowSet rows;
        rows.row()
            .cell(v.label)
            .cell(st.method("dophy").mae.mean(), 4)
            .cell(st.method("dophy").p90_abs.mean(), 4)
            .cell(dr.method("dophy").mae.mean(), 4)
            .cell(dr.method("dophy").p90_abs.mean(), 4)
            .cell(dr.method("dophy").spearman.mean(), 3);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
