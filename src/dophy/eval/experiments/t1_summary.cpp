// T1 — Summary table across the four canonical scenarios
// (static / dynamic / bursty / drifting).
//
// For each scenario: accuracy of every method, Dophy's wire overhead, the
// window delivery ratio (shows ARQ masking), and routing churn.

#include <string>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/report.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(const dophy::tomo::PipelineConfig& scenario,
                                        bool quick) {
  auto cfg = scenario;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  return cfg;
}

}  // namespace

void register_t1_summary(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "t1-summary";
  spec.figure = "T1";
  spec.claim =
      "Across static/dynamic/bursty/drifting scenarios Dophy's accuracy leads "
      "every traditional method at a small, bounded wire cost";
  spec.axes =
      "scenario in {static, dynamic, bursty, drifting, churn, opportunistic}";
  spec.title = "T1: summary across scenarios (80 nodes, 1h windows)";
  spec.output_stem = "table_summary";
  spec.columns = {"scenario", "method", "mae", "p90_abs_err", "spearman",
                  "coverage", "bytes_per_pkt", "delivery", "parent_chg_per_node_h",
                  "model_updates"};
  spec.expected =
      "\nExpected shape: dophy's MAE stays in the low hundredths and its rank\n"
      "correlation above ~0.9 in every scenario; traditional methods sit an\n"
      "order of magnitude worse even on the static network, and churn/burst\n"
      "scenarios widen the gap.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (auto& scenario : dophy::eval::summary_scenarios(ctx.nodes, 130)) {
      Cell cell;
      cell.label = "scenario=" + scenario.name;
      const auto cfg = cell_config(scenario.config, ctx.quick);
      cell.key = pipeline_cell_key(id, cell.label, cfg, ctx.trials, /*base_seed=*/1300);
      cell.compute = [cfg, name = scenario.name,
                      trials = ctx.trials](const CellContext& cc) {
        const auto agg = cc.run_trials(cfg, trials, 1300);
        RowSet rows;
        bool first = true;
        for (const auto& method_name : dophy::eval::method_order(agg)) {
          const auto& m = agg.method(method_name);
          rows.row()
              .cell(first ? name : "")
              .cell(method_name)
              .cell(m.mae.mean(), 4)
              .cell(m.p90_abs.mean(), 4)
              .cell(m.spearman.mean(), 3)
              .cell(m.coverage.mean(), 3)
              .cell(first ? dophy::common::format_double(
                                agg.bits_per_packet.mean() / 8.0, 2)
                          : std::string(""))
              .cell(first ? dophy::common::format_double(agg.delivery_ratio.mean(), 3)
                          : std::string(""))
              .cell(first ? dophy::common::format_double(
                                agg.parent_changes_per_node_hour.mean(), 2)
                          : std::string(""))
              .cell(first ? dophy::common::format_double(agg.model_updates.mean(), 1)
                          : std::string(""));
          first = false;
        }
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
