// A4 — Model-dissemination substrate ablation: abstract depth-latency flood
// vs the real Trickle protocol over the lossy control plane.
//
// Quantifies what the abstraction hides: Trickle pays maintenance traffic
// and delivers updates with stochastic multi-hop latency, which can leave
// forwarders briefly stale (missing-model hops -> dropped samples) — yet the
// tomography results must stay essentially unchanged, validating that the
// flood abstraction used by the headline figures is safe.

#include <string>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, bool use_trickle,
                                        bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 170);
  dophy::eval::make_drifting(cfg, 0.08, 900.0);
  cfg.dophy.update.policy = dophy::tomo::ModelUpdateConfig::Policy::kPeriodic;
  cfg.dophy.update.check_interval_s = 240.0;
  cfg.dophy.use_trickle_dissemination = use_trickle;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_a4_dissemination(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a4-dissemination";
  spec.figure = "A4";
  spec.claim =
      "Ablation: the abstract model flood is safe — real Trickle dissemination "
      "costs more bytes and latency but leaves the tomography unchanged";
  spec.axes = "dissemination in {abstract-flood, trickle-rfc6206}";
  spec.title = "A4: dissemination substrate — abstract flood vs Trickle";
  spec.output_stem = "fig_dissemination";
  spec.columns = {"dissemination", "updates", "dissem_kb", "install_lat_s",
                  "missing_model_hops", "decode_fail_pct", "mae"};
  spec.expected =
      "\nExpected shape: Trickle spends more bytes (maintenance gossip) and\n"
      "delivers updates in seconds rather than instantly, occasionally leaving\n"
      "a forwarder stale; decode failures stay near zero and MAE unchanged,\n"
      "so the abstract flood used elsewhere does not distort the results.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const bool use_trickle : {false, true}) {
      Cell cell;
      cell.label = std::string("dissemination=") +
                   (use_trickle ? "trickle-rfc6206" : "abstract-flood");
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, use_trickle, ctx.quick),
                                   ctx.trials, /*base_seed=*/1700);
      cell.compute = [nodes = ctx.nodes, use_trickle, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto cfg = cell_config(nodes, use_trickle, quick);
        const auto agg = cc.run_trials(cfg, trials, 1700, /*keep_runs=*/true);
        dophy::common::RunningStats dissem_kb, latency, missing;
        for (const auto& run : agg.runs) {
          if (use_trickle) {
            dissem_kb.add(static_cast<double>(run.trickle_stats.bytes_sent) / 1024.0);
            latency.add(run.trickle_stats.install_latency_s.mean());
          } else {
            dissem_kb.add(static_cast<double>(run.net_stats.control_flood_bytes) / 1024.0);
            latency.add(0.05 * 5.0);  // the abstraction's fixed per-depth delay
          }
          missing.add(static_cast<double>(run.encoder_stats.missing_model_hops));
        }
        RowSet rows;
        rows.row()
            .cell(use_trickle ? "trickle-rfc6206" : "abstract-flood")
            .cell(agg.model_updates.mean(), 1)
            .cell(dissem_kb.mean(), 1)
            .cell(latency.mean(), 2)
            .cell(missing.mean(), 1)
            .cell(100.0 * agg.decode_failure_rate.mean(), 3)
            .cell(agg.method("dophy").mae.mean(), 4);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
