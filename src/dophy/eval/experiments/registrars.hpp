#pragma once

// Internal: one registrar per built-in experiment, implemented in the
// sibling .cpp files and called (in catalog order) by
// eval::register_builtin_experiments.  Explicit calls instead of
// static-initializer self-registration: static libraries drop unreferenced
// translation units, and the catalog order must be deterministic.

namespace dophy::eval {
class ExperimentRegistry;
}

namespace dophy::eval::experiments {

/// Registers F1 (encoding overhead vs path length).
void register_f1_overhead_pathlen(ExperimentRegistry& registry);
/// Registers F2 (encoding overhead vs network loss level).
void register_f2_overhead_loss(ExperimentRegistry& registry);
/// Registers F3 (symbol-aggregation threshold ablation).
void register_f3_aggregation(ExperimentRegistry& registry);
/// Registers F4 (model-update policy vs total overhead).
void register_f4_model_update(ExperimentRegistry& registry);
/// Registers F5 (accuracy vs collected packets).
void register_f5_accuracy_packets(ExperimentRegistry& registry);
/// Registers F5b (within-run convergence over time).
void register_f5b_convergence(ExperimentRegistry& registry);
/// Registers F6 (accuracy vs routing dynamics — the headline comparison).
void register_f6_accuracy_dynamics(ExperimentRegistry& registry);
/// Registers F7 (scaling with network size).
void register_f7_accuracy_scale(ExperimentRegistry& registry);
/// Registers F8 (per-link absolute-error CDF).
void register_f8_error_cdf(ExperimentRegistry& registry);
/// Registers F9 (accuracy under injected faults).
void register_f9_faults(ExperimentRegistry& registry);
/// Registers T1 (summary table across canonical scenarios).
void register_t1_summary(ExperimentRegistry& registry);
/// Registers A1 (sink-estimator design ablation).
void register_a1_estimator_ablation(ExperimentRegistry& registry);
/// Registers A2 (network cost of the measurement plane).
void register_a2_cost(ExperimentRegistry& registry);
/// Registers A3 (id-coding vs path-hash recording).
void register_a3_pathmode(ExperimentRegistry& registry);
/// Registers A4 (abstract flood vs Trickle dissemination).
void register_a4_dissemination(ExperimentRegistry& registry);
/// Registers A5 (link-degradation detection latency).
void register_a5_detection(ExperimentRegistry& registry);
/// Registers A6 (streaming-sink replay throughput and exactness).
void register_a6_sink_replay(ExperimentRegistry& registry);

}  // namespace dophy::eval::experiments
