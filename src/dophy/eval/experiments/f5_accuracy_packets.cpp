// F5 — Estimation accuracy vs. number of collected packets.
//
// Claim (abstract): "Dophy achieves ... high estimation accuracy."
//
// The measurement window is swept so the sink decodes progressively more
// packets; per-link MAE for every method is reported against the packets
// actually measured.  Dophy's error falls like a parametric estimator
// (each hop is a full geometric observation); the end-to-end baselines
// starve because ARQ leaves almost no signal in delivery outcomes.

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/report.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, double measure_s, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 80);
  cfg.warmup_s = 300.0;
  cfg.measure_s = quick ? measure_s / 4.0 : measure_s;
  return cfg;
}

}  // namespace

void register_f5_accuracy_packets(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f5-accuracy-packets";
  spec.figure = "F5";
  spec.claim = "Dophy achieves high estimation accuracy from few collected packets";
  spec.axes = "measure_s in {300,600,1200,2400,4800}";
  spec.title = "F5: per-link MAE vs collected packets";
  spec.output_stem = "fig_accuracy_packets";
  spec.columns = {"measure_s", "packets", "dophy_mae", "delivery_ratio_mae",
                  "nnls_mae", "em_mae", "dophy_spearman", "em_spearman"};
  spec.expected =
      "\nExpected shape: dophy's MAE shrinks steadily with more packets\n"
      "(roughly 1/sqrt(n) per link) and sits ~10x below every baseline at\n"
      "every budget; baselines barely improve because end-to-end outcomes\n"
      "carry almost no per-attempt information under ARQ.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const double measure_s : {300.0, 600.0, 1200.0, 2400.0, 4800.0}) {
      Cell cell;
      cell.label = "measure_s=" + dophy::common::format_double(measure_s, 0);
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, measure_s, ctx.quick),
                                   ctx.trials, /*base_seed=*/800);
      cell.compute = [nodes = ctx.nodes, measure_s, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto cfg = cell_config(nodes, measure_s, quick);
        const auto agg = cc.run_trials(cfg, trials, 800, /*keep_runs=*/true);
        dophy::common::RunningStats packets;
        for (const auto& run : agg.runs) {
          packets.add(static_cast<double>(run.packets_measured));
        }
        RowSet rows;
        rows.row()
            .cell(cfg.measure_s, 0)
            .cell(packets.mean(), 0)
            .cell(agg.method("dophy").mae.mean(), 4)
            .cell(agg.method("delivery-ratio").mae.mean(), 4)
            .cell(agg.method("nnls").mae.mean(), 4)
            .cell(agg.method("em").mae.mean(), 4)
            .cell(agg.method("dophy").spearman.mean(), 3)
            .cell(agg.method("em").spearman.mean(), 3);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
