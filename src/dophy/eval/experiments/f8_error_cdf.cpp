// F8 — CDF of per-link absolute estimation error.
//
// One moderately dynamic scenario; all four estimators' per-link absolute
// errors are pooled across trials and tabulated at fixed CDF levels.

#include <map>
#include <string>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/metrics.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 120);
  dophy::eval::add_dynamics(cfg, 300.0, 0.12);
  cfg.dophy.tracker_decay = 0.85;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  return cfg;
}

}  // namespace

void register_f8_error_cdf(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f8-error-cdf";
  spec.figure = "F8";
  spec.claim =
      "Fine-grained per-hop counts improve worst-case links too: dophy's "
      "error distribution leads across all quantiles";
  spec.axes = "CDF levels {0.1,0.25,0.5,0.75,0.9,0.95,0.99} on one scenario";
  spec.title = "F8: abs-error CDF quantiles per method (dynamic, 80 nodes)";
  spec.output_stem = "fig_error_cdf";
  spec.columns = {"cdf_level", "dophy", "delivery-ratio", "nnls", "em"};
  spec.expected =
      "\nExpected shape: dophy's error curve is an order of magnitude to the\n"
      "left of every baseline across the entire distribution, not just at the\n"
      "median — fine-grained per-hop counts help worst-case links too.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    Cell cell;
    cell.label = "all";
    cell.key = pipeline_cell_key(id, cell.label, cell_config(ctx.nodes, ctx.quick),
                                 ctx.trials, /*base_seed=*/1200);
    cell.compute = [nodes = ctx.nodes, quick = ctx.quick,
                    trials = ctx.trials](const CellContext& cc) {
      const auto cfg = cell_config(nodes, quick);
      const auto agg = cc.run_trials(cfg, trials, 1200, /*keep_runs=*/true);

      std::map<std::string, std::vector<double>> errors;
      for (const auto& run : agg.runs) {
        for (const auto& method : run.methods) {
          const auto errs = dophy::tomo::abs_errors(method.scores);
          auto& pool = errors[method.name];
          pool.insert(pool.end(), errs.begin(), errs.end());
        }
      }

      RowSet rows;
      for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        auto row_cell = [&](const std::string& name) {
          const auto it = errors.find(name);
          return (it == errors.end() || it->second.empty())
                     ? std::string("-")
                     : dophy::common::format_double(
                           dophy::common::quantile(it->second, q), 4);
        };
        rows.row()
            .cell(q, 2)
            .cell(row_cell("dophy"))
            .cell(row_cell("delivery-ratio"))
            .cell(row_cell("nnls"))
            .cell(row_cell("em"));
      }
      return rows;
    };
    return std::vector<Cell>{std::move(cell)};
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
