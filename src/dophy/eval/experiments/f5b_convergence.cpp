// F5b — Within-run convergence: Dophy per-link MAE over time after
// deployment start (complements F5, which compares whole-window budgets).
// Classic "accuracy settles within minutes" deployment figure.

#include <map>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, bool quick,
                                        std::uint64_t seed) {
  auto cfg = dophy::eval::default_pipeline(nodes, seed);
  cfg.warmup_s = 300.0;
  cfg.measure_s = quick ? 1200.0 : 3600.0;
  cfg.snapshot_interval_s = 120.0;
  cfg.collect_epoch_series = true;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_f5b_convergence(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f5b-convergence";
  spec.figure = "F5b";
  spec.claim = "Dophy's accuracy settles within minutes of deployment start";
  spec.axes = "epoch snapshots every 120 s over one measurement window";
  spec.title = "F5b: Dophy accuracy vs time since deployment";
  spec.output_stem = "fig_convergence";
  spec.columns = {"t_since_start_s", "packets", "links_scored", "dophy_mae"};
  spec.expected =
      "\nExpected shape: MAE drops steeply over the first few hundred seconds\n"
      "as every link accumulates geometric samples, then improves slowly\n"
      "(~1/sqrt(t)); the scored-link count rises as thin links cross the\n"
      "ground-truth support threshold.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    Cell cell;
    cell.label = "all";
    cell.key = pipeline_cell_key(id, cell.label,
                                 cell_config(ctx.nodes, ctx.quick, 190),
                                 ctx.trials, /*base_seed=*/190);
    cell.key.set("seed.formula", "190+trial");
    cell.compute = [nodes = ctx.nodes, quick = ctx.quick,
                    trials = ctx.trials](const CellContext&) {
      // time bucket -> per-trial values
      std::map<std::uint64_t, dophy::common::RunningStats> mae_at, links_at, packets_at;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto cfg = cell_config(nodes, quick, 190 + trial);
        const auto result = dophy::tomo::run_pipeline(cfg);
        for (const auto& point : result.epoch_series) {
          const auto bucket = static_cast<std::uint64_t>(point.t_s + 0.5);
          mae_at[bucket].add(point.mae);
          links_at[bucket].add(static_cast<double>(point.links_scored));
          packets_at[bucket].add(static_cast<double>(point.packets));
        }
      }
      RowSet rows;
      for (const auto& [t, mae] : mae_at) {
        rows.row()
            .cell(t)
            .cell(packets_at[t].mean(), 0)
            .cell(links_at[t].mean(), 0)
            .cell(mae.mean(), 4);
      }
      return rows;
    };
    return std::vector<Cell>{std::move(cell)};
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
