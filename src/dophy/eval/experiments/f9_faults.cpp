// F9 — accuracy and accounting under injected faults (chaos sweep).
//
// The F6 sweep stresses routing dynamics; this one stresses *infrastructure*
// faults: node crashes, sink outages, link blackout bursts, clock skew, and
// hostile report corruption/truncation/drop, all driven by a deterministic
// dophy::fault::FaultPlan.  Two claims under test:
//
//   1. Robustness: a corrupted or truncated report surfaces as a counted,
//      typed decode failure — never a crash and never garbage hops poisoning
//      the estimates — so Dophy's accuracy degrades gracefully (it loses
//      samples, not correctness).
//   2. Observability: every injected fault is visible in the run report
//      (fault.* counters) and the event trace (fault_inject events).

#include <string>
#include <vector>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

struct Level {
  std::string label;
  double intensity;
};

const std::vector<Level>& levels() {
  static const std::vector<Level> list = {
      {"off", 0.0}, {"low", 0.25}, {"moderate", 0.5}, {"high", 0.75}, {"extreme", 1.0},
  };
  return list;
}

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, double intensity,
                                        bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 90);
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  dophy::eval::add_faults(cfg, intensity);
  return cfg;
}

}  // namespace

void register_f9_faults(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f9-faults";
  spec.figure = "F9";
  spec.claim =
      "Under injected infrastructure faults Dophy loses samples, not "
      "correctness: mutated reports fail typed, accuracy degrades gracefully";
  spec.axes = "fault intensity in {off, low, moderate, high, extreme}";
  spec.title = "F9: accuracy under injected faults (chaos sweep)";
  spec.output_stem = "fig_faults";
  spec.columns = {"faults", "fault_events", "reports_mutated",
                  "delivery_ratio", "decode_fail_rate", "dophy_mae",
                  "delivery_ratio_mae", "em_mae"};
  spec.expected =
      "\nExpected shape: delivery ratio falls and the decode-failure rate rises\n"
      "monotonically with fault intensity, while Dophy's MAE on the links it\n"
      "still observes degrades only gently — mutated reports are rejected with\n"
      "typed errors instead of contributing garbage hop observations.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (std::size_t i = 0; i < levels().size(); ++i) {
      const auto& grid_level = levels()[i];
      Cell cell;
      cell.label = "faults=" + grid_level.label;
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, grid_level.intensity, ctx.quick),
                                   ctx.trials, /*base_seed=*/900);
      cell.compute = [nodes = ctx.nodes, i, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto& level = levels()[i];
        const auto cfg = cell_config(nodes, level.intensity, quick);
        const auto agg = cc.run_trials(cfg, trials, 900, /*keep_runs=*/true);
        std::uint64_t fault_events = 0;
        std::uint64_t reports_mutated = 0;
        for (const auto& run : agg.runs) {
          fault_events += run.fault_stats.events_executed;
          reports_mutated += run.fault_stats.reports_mutated();
        }
        RowSet rows;
        rows.row()
            .cell(level.label)
            .cell(fault_events)
            .cell(reports_mutated)
            .cell(agg.delivery_ratio.mean(), 3)
            .cell(agg.decode_failure_rate.mean(), 4)
            .cell(agg.method("dophy").mae.mean(), 4)
            .cell(agg.method("delivery-ratio").mae.mean(), 4)
            .cell(agg.method("em").mae.mean(), 4);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
