// A6 — Streaming-sink replay: throughput and exactness of the standing
// ingestion service (dophy::sink) against the batch pipeline.
//
// Each trial records the sink-side stream of a pipeline run (model installs
// + delivered packets, in arrival order) and replays it unpaced through
// SinkService under the cell's ingest configuration.  Lossless cells
// (kBlock) additionally run the batch tomo::LinkLossEstimator over the same
// stream and report the worst estimate divergence — the incremental MLE is
// exact, so anything above 1e-12 is a bug, not noise.  The drop-policy cell
// shows bounded-latency shedding under a deliberately tiny ring.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/sink/stream_feed.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::eval::experiments {

namespace {

using dophy::sink::OverflowPolicy;
using dophy::sink::ReportStream;
using dophy::sink::SinkService;
using dophy::sink::SinkServiceConfig;
using dophy::sink::StreamRecord;

struct CellConfig {
  std::size_t producers = 1;
  std::size_t consumers = 1;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  std::size_t queue_capacity = 4096;
};

/// Captures the sink-side stream during the recording run.
class RecordingTap final : public dophy::tomo::SinkReportTap {
 public:
  void on_sink_install(const dophy::tomo::ModelSet& set) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kModelInstall;
    rec.model_bytes = set.serialize();
    stream.records.push_back(std::move(rec));
  }

  void on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                   bool in_measure) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kReport;
    rec.report.packet = packet;
    rec.report.packet.true_hops.clear();  // simulator-only ground truth
    rec.report.packet.span = 0;
    rec.report.recv_time = now;
    rec.report.in_measure = in_measure;
    stream.records.push_back(std::move(rec));
  }

  ReportStream stream;
};

ReportStream record_stream(std::size_t nodes, std::uint64_t seed, bool quick) {
  auto config = dophy::eval::default_pipeline(nodes, seed);
  config.warmup_s = quick ? 120.0 : 300.0;
  config.measure_s = quick ? 300.0 : 900.0;
  config.run_baselines = false;  // the stream only needs the Dophy path

  RecordingTap tap;
  tap.stream.node_count = config.net.topology.node_count;
  tap.stream.censor_threshold = config.dophy.censor_threshold;
  tap.stream.max_hops = static_cast<std::uint16_t>(config.net.traffic.max_hops + 2);
  config.report_tap = &tap;
  (void)dophy::tomo::run_pipeline(config);
  return std::move(tap.stream);
}

struct TrialResult {
  double reports = 0.0;
  double reports_per_s = 0.0;
  double dropped = 0.0;
  double max_delta = 0.0;  ///< vs batch; only meaningful when lossless
  bool diverged = false;
};

TrialResult run_trial(const ReportStream& stream, const CellConfig& cell) {
  SinkServiceConfig cfg;
  cfg.node_count = stream.node_count;
  cfg.censor_threshold = stream.censor_threshold;
  cfg.max_hops = stream.max_hops;
  cfg.producers = cell.producers;
  cfg.consumers = cell.consumers;
  cfg.queue_capacity = cell.queue_capacity;
  cfg.overflow_policy = cell.policy;

  SinkService service(cfg);
  service.start();

  // Canonical feed (sink::feed_stream): reports fan out round-robin over
  // producer lanes, one thread per lane, and every model install is an idle
  // barrier so the install/report order matches the recording exactly.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> lane_sent(cell.producers, 0);
  (void)dophy::sink::feed_stream(service, stream, cell.producers, lane_sent, start);
  service.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.stop();

  const auto stats = service.stats();
  TrialResult result;
  result.reports = static_cast<double>(stats.reports_processed);
  result.reports_per_s =
      elapsed > 0.0 ? static_cast<double>(stats.reports_processed) / elapsed : 0.0;
  result.dropped = static_cast<double>(stats.queue.dropped);

  if (cell.policy == OverflowPolicy::kBlock) {
    // Differential: batch estimator over the identical stream.
    dophy::tomo::ModelStore store;
    const dophy::tomo::SymbolMapper mapper(stream.censor_threshold);
    store.install(
        dophy::tomo::ModelSet::bootstrap(stream.node_count, mapper.alphabet_size()));
    dophy::tomo::DophyDecoder decoder(store, mapper, stream.max_hops);
    dophy::tomo::LinkLossEstimator batch(stream.censor_threshold);
    for (const StreamRecord& rec : stream.records) {
      if (rec.kind == StreamRecord::Kind::kModelInstall) {
        store.install(dophy::tomo::ModelSet::deserialize(rec.model_bytes));
        continue;
      }
      auto decoded = decoder.decode(rec.report.packet);
      if (decoded && rec.report.in_measure) batch.observe_path(*decoded);
    }
    const auto batch_links = batch.all_estimates();
    const auto inc_links = service.all_estimates();
    result.diverged = batch_links.size() != inc_links.size();
    for (std::size_t i = 0; !result.diverged && i < batch_links.size(); ++i) {
      const auto& [bk, be] = batch_links[i];
      const auto& [ik, ie] = inc_links[i];
      if (bk != ik) {
        result.diverged = true;
        break;
      }
      result.max_delta = std::max({result.max_delta, std::fabs(be.loss - ie.loss),
                                   std::fabs(be.stderr_ - ie.stderr_)});
    }
  }
  return result;
}

RowSet compute_cell(std::size_t nodes, const CellConfig& cell, const std::string& label,
                    std::size_t trials, bool quick) {
  dophy::common::RunningStats reports, rate, dropped;
  double max_delta = 0.0;
  bool diverged = false;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto stream = record_stream(nodes, 240 + t, quick);
    const auto r = run_trial(stream, cell);
    reports.add(r.reports);
    rate.add(r.reports_per_s);
    dropped.add(r.dropped);
    max_delta = std::max(max_delta, r.max_delta);
    diverged = diverged || r.diverged;
  }
  const bool lossless = cell.policy == OverflowPolicy::kBlock;
  char delta_text[32];
  std::snprintf(delta_text, sizeof(delta_text), "%.3e", max_delta);
  RowSet rows;
  rows.row()
      .cell(label)
      .cell(reports.mean(), 0)
      .cell(rate.mean(), 0)
      .cell(dropped.mean(), 0)
      .cell(lossless ? (diverged ? std::string("DIVERGED") : std::string(delta_text))
                     : std::string("-"));
  return rows;
}

}  // namespace

void register_a6_sink_replay(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a6-sink-replay";
  spec.figure = "A6";
  spec.claim =
      "The streaming sink service sustains >= 1e5 reports/s and its "
      "incremental MLE is exact against the batch estimator";
  spec.axes =
      "ingest config in {1p1c-block, 2p1c-block, 4p1c-block, 4p2c-block, "
      "4p4c-block, 1p-drop-tiny}";
  spec.title = "A6: sink replay throughput and incremental-vs-batch exactness";
  spec.output_stem = "fig_sink_replay";
  spec.default_trials = 3;
  spec.default_nodes = 50;
  spec.columns = {"ingest", "reports", "reports_per_s", "dropped", "max_abs_delta"};
  spec.expected =
      "\nExpected shape: every lossless (block-policy) configuration agrees\n"
      "with the batch estimator to <= 1e-12 — the sufficient statistics are\n"
      "order-invariant, so neither producer count nor consumer count (the\n"
      "shard-affine consumer group merges exactly) can matter.  Replay\n"
      "throughput sits far above any deployment's report rate (the sink is\n"
      "not the bottleneck); multi-consumer cells scale further on multicore\n"
      "hosts.  The tiny drop-policy ring sheds load instead of blocking;\n"
      "its divergence column is '-' because shedding makes the accepted\n"
      "subset nondeterministic across producer interleavings.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    struct Axis {
      const char* label;
      CellConfig config;
    };
    const Axis axes[] = {
        {"1p1c-block", {1, 1, OverflowPolicy::kBlock, 4096}},
        {"2p1c-block", {2, 1, OverflowPolicy::kBlock, 4096}},
        {"4p1c-block", {4, 1, OverflowPolicy::kBlock, 4096}},
        {"4p2c-block", {4, 2, OverflowPolicy::kBlock, 4096}},
        {"4p4c-block", {4, 4, OverflowPolicy::kBlock, 4096}},
        {"1p-drop-tiny", {1, 1, OverflowPolicy::kDropNewest, 64}},
    };
    std::vector<Cell> cells;
    for (const auto& axis : axes) {
      Cell cell;
      cell.label = std::string("ingest=") + axis.label;
      cell.key = pipeline_cell_key(id, cell.label,
                                   dophy::eval::default_pipeline(ctx.nodes, 240),
                                   ctx.trials, /*base_seed=*/240);
      cell.key.set("seed.formula", "240+trial")
          .set("producers", static_cast<std::uint64_t>(axis.config.producers))
          .set("consumers", static_cast<std::uint64_t>(axis.config.consumers))
          .set("policy",
               axis.config.policy == OverflowPolicy::kBlock ? "block" : "drop")
          .set("queue_capacity",
               static_cast<std::uint64_t>(axis.config.queue_capacity))
          .set("quick", ctx.quick);
      cell.compute = [nodes = ctx.nodes, config = axis.config,
                      label = std::string(axis.label), trials = ctx.trials,
                      quick = ctx.quick](const CellContext&) {
        return compute_cell(nodes, config, label, trials, quick);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
