// A2 — What Dophy costs the network (DESIGN.md design-cost bench).
//
// Runs the same network with and without the in-packet measurement plane
// and compares delivery, latency, and estimated radio energy.  The blob adds
// bytes to every data frame (per-byte tx energy) and model floods add
// control traffic; nothing else changes (the simulator's frame timing is
// size-independent, as is typical for slotted WSN MACs).

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/net/energy.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

namespace dophy::eval::experiments {

namespace {

RowSet compute_cell(std::size_t nodes, bool with_dophy, double duration_s,
                    std::size_t trials) {
  dophy::common::RunningStats delivered, delivery, latency, energy, meas_pct;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto cfg = dophy::eval::default_pipeline(nodes, 150 + trial);
    const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
    dophy::tomo::DophyInstrumentation instr(nodes, mapper);
    dophy::net::Network net(cfg.net, with_dophy ? &instr : nullptr);
    net.run_for(duration_s);

    const auto stats = net.stats();
    const auto e = dophy::net::estimate_energy(stats);
    delivered.add(static_cast<double>(stats.packets_delivered));
    delivery.add(stats.delivery_ratio());
    latency.add(net.traces().latency().mean() * 1000.0);
    energy.add(e.total_mj());
    meas_pct.add(100.0 * e.measurement_fraction());
  }
  RowSet rows;
  rows.row()
      .cell(with_dophy ? "with-dophy" : "plain-ctp")
      .cell(delivered.mean(), 0)
      .cell(delivery.mean(), 4)
      .cell(latency.mean(), 1)
      .cell(energy.mean(), 1)
      .cell(meas_pct.mean(), 2);
  return rows;
}

}  // namespace

void register_a2_cost(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a2-cost";
  spec.figure = "A2";
  spec.claim =
      "The measurement plane costs only per-byte tx energy: delivery and "
      "latency are unchanged with seeds held fixed";
  spec.axes = "config in {plain-ctp, with-dophy}";
  spec.title = "A2: network cost of the Dophy measurement plane";
  spec.output_stem = "fig_cost";
  spec.columns = {"config", "delivered", "delivery", "latency_ms_mean",
                  "energy_mj", "meas_energy_pct"};
  spec.expected =
      "\nExpected shape: delivery and latency are identical (the blob rides\n"
      "existing frames, and seeds match so the runs are event-for-event the\n"
      "same); the energy delta is the per-byte cost of the measurement field\n"
      "— dominated by the 10-byte in-flight coder trailer, ~10% of the radio\n"
      "budget at this traffic rate.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    const double duration_s = ctx.quick ? 1200.0 : 3600.0;
    std::vector<Cell> cells;
    for (const bool with_dophy : {false, true}) {
      Cell cell;
      cell.label = std::string("config=") + (with_dophy ? "with-dophy" : "plain-ctp");
      cell.key = pipeline_cell_key(id, cell.label,
                                   dophy::eval::default_pipeline(ctx.nodes, 150),
                                   ctx.trials, /*base_seed=*/150);
      cell.key.set("seed.formula", "150+trial")
          .set("with_dophy", with_dophy)
          .set("duration_s", duration_s);
      cell.compute = [nodes = ctx.nodes, with_dophy, duration_s,
                      trials = ctx.trials](const CellContext&) {
        return compute_cell(nodes, with_dophy, duration_s, trials);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
