// F2 — Encoding overhead vs. network loss level.
//
// Setup: full simulation pipelines with the distance-derived link losses
// scaled by a sweep factor.  As links get lossier, retransmission counts
// spread out, the symbol distribution flattens, and every scheme pays more —
// but Dophy's trained arithmetic model pays the least.  Offline codecs are
// evaluated on the *actual* per-hop attempt streams harvested from the
// simulation ground truth, so all schemes see identical data.

#include <vector>

#include "dophy/coding/codec.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, double scale, bool quick,
                                        std::uint64_t seed) {
  auto cfg = dophy::eval::default_pipeline(nodes, seed);
  cfg.net.loss.loss_scale = scale;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 450.0 : 1200.0;
  cfg.run_baselines = false;
  cfg.collect_attempt_stream = true;
  return cfg;
}

RowSet compute_cell(std::size_t nodes, double scale, bool quick, std::size_t trials) {
  dophy::common::RunningStats link_loss, attempts_mean, dophy_retx_bph, dophy_id_bph,
      huffman_bph, rice_bph, fixed_bph, dophy_bpp;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto cfg = cell_config(nodes, scale, quick, 40 + trial);
    const auto result = dophy::tomo::run_pipeline(cfg);

    dophy_retx_bph.add(result.encoder_stats.mean_retx_bits_per_hop());
    dophy_id_bph.add(result.encoder_stats.mean_id_bits_per_hop());
    dophy_bpp.add(result.mean_bits_per_packet / 8.0);
    for (const auto& s : result.method("dophy").scores) link_loss.add(s.truth);

    // Re-encode the genuine per-hop attempt stream with the alternatives.
    const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(result.attempt_stream.size());
    for (const auto attempts : result.attempt_stream) {
      symbols.push_back(mapper.to_symbol(attempts));
      attempts_mean.add(attempts);
    }
    if (symbols.empty()) continue;
    std::vector<std::uint64_t> counts(mapper.alphabet_size(), 0);
    for (const auto s : symbols) ++counts[s];
    std::vector<std::uint8_t> buf;
    const double n = static_cast<double>(symbols.size());
    huffman_bph.add(static_cast<double>(
                        dophy::coding::make_huffman_codec(counts)->encode(symbols, buf)) /
                    n);
    rice_bph.add(
        static_cast<double>(dophy::coding::make_rice_codec(0)->encode(symbols, buf)) / n);
    fixed_bph.add(static_cast<double>(
                      dophy::coding::make_fixed_width_codec(8)->encode(symbols, buf)) /
                  n);
  }
  RowSet rows;
  rows.row()
      .cell(scale, 2)
      .cell(link_loss.mean(), 3)
      .cell(attempts_mean.mean(), 3)
      .cell(dophy_retx_bph.mean(), 2)
      .cell(huffman_bph.mean(), 2)
      .cell(rice_bph.mean(), 2)
      .cell(fixed_bph.mean(), 2)
      .cell(dophy_id_bph.mean(), 2)
      .cell(dophy_bpp.mean(), 2);
  return rows;
}

}  // namespace

void register_f2_overhead_loss(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f2-overhead-loss";
  spec.figure = "F2";
  spec.claim =
      "Dophy's trained arithmetic model pays the least as links get lossier "
      "and the symbol distribution flattens";
  spec.axes = "loss_scale in {0.25,0.5,1,1.5,2,3}";
  spec.title = "F2: encoding overhead vs network loss level";
  spec.output_stem = "fig_overhead_loss";
  spec.columns = {"loss_scale", "mean_link_loss", "mean_attempts",
                  "dophy_count_bits", "huffman_count_bits", "rice0_count_bits",
                  "fixed3bit_count_bits", "dophy_id_bits", "dophy_bytes_per_pkt"};
  spec.expected =
      "\nExpected shape: per-hop count-coding cost grows with loss for every\n"
      "scheme (counts spread out); dophy's arithmetic coding stays below the\n"
      ">= 1 bit/hop floor the prefix codes pay on clean networks, and the gap\n"
      "narrows only as the network becomes very lossy.  (dophy_id_bits is the\n"
      "path-recording cost the other schemes would also have to pay.)\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const double scale : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0}) {
      Cell cell;
      cell.label = "loss_scale=" + dophy::common::format_double(scale, 2);
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, scale, ctx.quick, 40),
                                   ctx.trials, /*base_seed=*/40);
      cell.key.set("seed.formula", "40+trial");
      cell.compute = [nodes = ctx.nodes, scale, quick = ctx.quick,
                      trials = ctx.trials](const CellContext&) {
        return compute_cell(nodes, scale, quick, trials);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
