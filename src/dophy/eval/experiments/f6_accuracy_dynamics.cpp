// F6 — THE headline comparison: accuracy vs. routing dynamics.
//
// Claim (abstract): "Comparative studies show that Dophy significantly
// outperforms traditional loss tomography approaches in terms of accuracy"
// — in dynamic WSNs "where each node dynamically selects the forwarding
// nodes towards the sink".
//
// Link qualities re-randomize with increasing intensity, driving parent
// churn from near-zero to many changes per node-hour.  Dophy decodes the
// exact per-packet path, so churn barely touches it; the baselines' snapshot
// paths go stale and their error climbs.

#include <algorithm>
#include <string>
#include <vector>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

struct Level {
  std::string label;
  double interval_s;  // 0 = static
  double spread;
};

const std::vector<Level>& levels() {
  static const std::vector<Level> list = {
      {"static", 0.0, 0.0},        {"mild", 600.0, 0.08},  {"moderate", 300.0, 0.12},
      {"high", 150.0, 0.18},       {"extreme", 60.0, 0.25},
  };
  return list;
}

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, const Level& level,
                                        bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 90);
  if (level.interval_s > 0.0) {
    dophy::eval::add_dynamics(cfg, level.interval_s, level.spread);
    cfg.dophy.tracker_decay = 0.85;  // track moving link qualities
  }
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 900.0 : 3600.0;
  return cfg;
}

}  // namespace

void register_f6_accuracy_dynamics(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f6-accuracy-dynamics";
  spec.figure = "F6";
  spec.claim =
      "Dophy significantly outperforms traditional loss tomography approaches "
      "in accuracy when nodes dynamically select forwarding nodes";
  spec.axes = "dynamics in {static, mild, moderate, high, extreme}";
  spec.title = "F6: accuracy vs routing dynamics (headline comparison)";
  spec.output_stem = "fig_accuracy_dynamics";
  spec.columns = {"dynamics", "parent_chg_per_node_h", "dophy_mae",
                  "delivery_ratio_mae", "nnls_mae", "em_mae",
                  "dophy_spearman", "best_baseline_spearman"};
  spec.expected =
      "\nExpected shape: dophy stays flat and accurate across the whole sweep\n"
      "(it never assumes a path); every traditional method is already poor on\n"
      "the static network (ARQ masks loss from end-to-end outcomes) and\n"
      "degrades further as parent churn invalidates its snapshot paths.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (std::size_t i = 0; i < levels().size(); ++i) {
      const auto& grid_level = levels()[i];
      Cell cell;
      cell.label = "dynamics=" + grid_level.label;
      cell.key = pipeline_cell_key(id, cell.label,
                                   cell_config(ctx.nodes, grid_level, ctx.quick),
                                   ctx.trials, /*base_seed=*/900);
      cell.compute = [nodes = ctx.nodes, i, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto& level = levels()[i];
        const auto cfg = cell_config(nodes, level, quick);
        const auto agg = cc.run_trials(cfg, trials, 900);
        const double best_baseline_rho =
            std::max({agg.method("delivery-ratio").spearman.mean(),
                      agg.method("nnls").spearman.mean(),
                      agg.method("em").spearman.mean()});
        RowSet rows;
        rows.row()
            .cell(level.label)
            .cell(agg.parent_changes_per_node_hour.mean(), 2)
            .cell(agg.method("dophy").mae.mean(), 4)
            .cell(agg.method("delivery-ratio").mae.mean(), 4)
            .cell(agg.method("nnls").mae.mean(), 4)
            .cell(agg.method("em").mae.mean(), 4)
            .cell(agg.method("dophy").spearman.mean(), 3)
            .cell(best_baseline_rho, 3);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
