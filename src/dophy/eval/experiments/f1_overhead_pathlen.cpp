// F1 — Encoding overhead vs. path length.
//
// Claim (abstract): "Dophy employs arithmetic encoding to compactly encode
// the number of retransmissions along the paths ... reducing the encoding
// overhead significantly."
//
// Setup: synthetic multi-hop paths whose per-hop transmission counts are
// Geometric in heterogeneous per-link losses (drawn from the same
// distance-curve regime the simulator produces).  Each scheme encodes the
// per-packet count sequence (aggregated at K=4); node ids cost the same for
// every scheme and are excluded.  Reported: mean measurement bytes/packet.

#include <algorithm>
#include <vector>

#include "dophy/coding/codec.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::eval::experiments {

namespace {

using dophy::common::Rng;

constexpr std::uint32_t kCensorK = 4;
constexpr std::uint32_t kMaxAttempts = 8;

/// Per-hop losses for a path: mixture of mostly-good and some bad links.
std::vector<double> draw_path_losses(Rng& rng, std::size_t hops) {
  std::vector<double> losses(hops);
  for (auto& p : losses) {
    p = rng.bernoulli(0.25) ? rng.uniform(0.2, 0.5) : rng.uniform(0.02, 0.15);
  }
  return losses;
}

std::vector<std::uint32_t> draw_packet_symbols(Rng& rng, const std::vector<double>& losses,
                                               const dophy::tomo::SymbolMapper& mapper) {
  std::vector<std::uint32_t> symbols;
  symbols.reserve(losses.size());
  for (const double p : losses) {
    const std::uint32_t attempts = std::min(rng.geometric_trials(1.0 - p), kMaxAttempts);
    symbols.push_back(mapper.to_symbol(attempts));
  }
  return symbols;
}

RowSet compute_cell(std::size_t hops, std::size_t trials, std::size_t packets) {
  const dophy::tomo::SymbolMapper mapper(kCensorK);
  dophy::common::RunningStats raw8, fixed2, gamma, rice0, huffman, arith, entropy;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(1000 + trial * 77 + hops);
    // Train Huffman/arithmetic on a training corpus from the same regime.
    std::vector<std::uint64_t> counts(kCensorK, 0);
    for (int i = 0; i < 5000; ++i) {
      const auto losses = draw_path_losses(rng, hops);
      for (const auto s : draw_packet_symbols(rng, losses, mapper)) ++counts[s];
    }
    auto huffman_codec = dophy::coding::make_huffman_codec(counts);
    auto arith_codec = dophy::coding::make_static_arith_codec(counts);
    auto fixed_codec = dophy::coding::make_fixed_width_codec(kCensorK);
    auto gamma_codec = dophy::coding::make_elias_gamma_codec();
    auto rice_codec = dophy::coding::make_rice_codec(0);
    const double h_bits = dophy::common::entropy_bits(counts);

    std::vector<std::uint8_t> buf;
    for (std::size_t pkt = 0; pkt < packets; ++pkt) {
      const auto losses = draw_path_losses(rng, hops);
      const auto symbols = draw_packet_symbols(rng, losses, mapper);
      raw8.add(static_cast<double>(symbols.size()));  // 1 byte/hop baseline
      fixed2.add(static_cast<double>(fixed_codec->encode(symbols, buf)) / 8.0);
      gamma.add(static_cast<double>(gamma_codec->encode(symbols, buf)) / 8.0);
      rice0.add(static_cast<double>(rice_codec->encode(symbols, buf)) / 8.0);
      huffman.add(static_cast<double>(huffman_codec->encode(symbols, buf)) / 8.0);
      arith.add(static_cast<double>(arith_codec->encode(symbols, buf)) / 8.0);
      entropy.add(h_bits * static_cast<double>(hops) / 8.0);
    }
  }
  RowSet rows;
  rows.row()
      .cell(hops)
      .cell(raw8.mean(), 3)
      .cell(fixed2.mean(), 3)
      .cell(gamma.mean(), 3)
      .cell(rice0.mean(), 3)
      .cell(huffman.mean(), 3)
      .cell(arith.mean(), 3)
      .cell(entropy.mean(), 3);
  return rows;
}

}  // namespace

void register_f1_overhead_pathlen(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f1-overhead-pathlen";
  spec.figure = "F1";
  spec.claim =
      "Arithmetic encoding compactly encodes per-path retransmission counts, "
      "reducing the encoding overhead significantly";
  spec.axes = "path_len in {1,2,4,6,8,10,12}";
  spec.title = "F1: measurement bytes/packet vs path length (retx counts, K=4)";
  spec.output_stem = "fig_overhead_pathlen";
  spec.default_trials = 5;
  spec.default_nodes = 100;
  spec.columns = {"path_len", "raw8bit_B", "fixed2bit_B", "gamma_B",
                  "rice0_B",  "huffman_B", "dophy_arith_B", "entropy_B"};
  spec.expected =
      "\nExpected shape: dophy_arith tracks the entropy bound and undercuts\n"
      "every prefix code; the gap widens with path length because arithmetic\n"
      "coding amortizes sub-bit symbols while Huffman/Rice pay >= 1 bit/hop.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    const std::size_t packets = ctx.quick ? 2000 : 10000;
    std::vector<Cell> cells;
    for (const std::size_t hops : {1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
      Cell cell;
      cell.label = "path_len=" + std::to_string(hops);
      cell.key.set("experiment", id)
          .set("cell", cell.label)
          .set("trials", static_cast<std::uint64_t>(ctx.trials))
          .set("packets", static_cast<std::uint64_t>(packets))
          .set("hops", static_cast<std::uint64_t>(hops))
          .set("censor_k", kCensorK)
          .set("max_attempts", kMaxAttempts)
          .set("seed.formula", "1000+trial*77+hops")
          .set("training_paths", std::uint64_t{5000});
      cell.compute = [hops, trials = ctx.trials, packets](const CellContext&) {
        return compute_cell(hops, trials, packets);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
