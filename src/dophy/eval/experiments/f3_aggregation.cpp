// F3 — Symbol-aggregation ablation.
//
// Claim (abstract): "Dophy intelligently reduces the size of symbol set by
// aggregating the number of retransmissions, reducing the encoding overhead
// significantly."
//
// Sweep the censoring threshold K.  Small K means a tiny alphabet (cheap
// symbols, small disseminated models) but more censored observations for the
// MLE; large K means exact counts at higher cost.  The censored-geometric
// estimator keeps accuracy essentially flat, which is what makes the
// optimization free.

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/measurement.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, std::uint32_t k, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 60);
  cfg.dophy.censor_threshold = k;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 600.0 : 2400.0;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_f3_aggregation(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f3-aggregation";
  spec.figure = "F3";
  spec.claim =
      "Aggregating retransmission counts shrinks the symbol set and the "
      "encoding overhead significantly while the censored MLE keeps accuracy flat";
  spec.axes = "censor_threshold K in {2,3,4,6,8}";
  spec.title = "F3: symbol-aggregation threshold K ablation";
  spec.output_stem = "fig_aggregation";
  spec.columns = {"K", "alphabet", "model_bytes", "count_bits_per_hop",
                  "total_bits_per_hop", "bytes_per_pkt", "mae", "p90_abs_err",
                  "spearman"};
  spec.expected =
      "\nExpected shape: bits/hop and model size fall as K shrinks while MAE\n"
      "stays nearly flat — the censored MLE compensates for aggregation, so\n"
      "small symbol sets are (almost) free accuracy-wise.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const std::uint32_t k : {2u, 3u, 4u, 6u, 8u}) {
      Cell cell;
      cell.label = "K=" + std::to_string(k);
      cell.key = pipeline_cell_key(id, cell.label, cell_config(ctx.nodes, k, ctx.quick),
                                   ctx.trials, /*base_seed=*/600 + k);
      cell.compute = [nodes = ctx.nodes, k, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto cfg = cell_config(nodes, k, quick);
        const auto agg = cc.run_trials(cfg, trials, 600 + k, /*keep_runs=*/true);
        const auto& dophy = agg.method("dophy");

        // Wire size of a representative learned model set at this K.
        const auto model_bytes = dophy::tomo::ModelSet::bootstrap(nodes, k).wire_size();

        RowSet rows;
        rows.row()
            .cell(k)
            .cell(k)
            .cell(model_bytes)
            .cell(agg.retx_bits_per_hop.mean(), 3)
            .cell(agg.bits_per_hop.mean(), 2)
            .cell(agg.bits_per_packet.mean() / 8.0, 2)
            .cell(dophy.mae.mean(), 4)
            .cell(dophy.p90_abs.mean(), 4)
            .cell(dophy.spearman.mean(), 3);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
