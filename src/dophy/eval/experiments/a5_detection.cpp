// A5 — Degradation-detection latency.
//
// "Fine-grained" is also about timeliness: a busy link is scripted to jump
// from its natural quality to a high loss level at a known instant, and we
// measure how long the sink-side tracker takes to report the change (cross
// the midpoint between old and new loss).  Swept over the tracker's epoch
// decay to show the responsiveness/steady-noise trade-off.

#include <algorithm>
#include <memory>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/net/network.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/link_inference.hpp"

namespace dophy::eval::experiments {

namespace {

using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::SimTime;

constexpr double kDegradeAt = 900.0;   // seconds (after warm-up)
constexpr double kDegradedLoss = 0.5;
constexpr double kEpoch = 30.0;

/// One trial: returns {detection latency s, pre-change estimate, link found}.
struct TrialResult {
  double latency_s = -1.0;
  double before = 0.0;
  bool ok = false;
};

TrialResult run_trial(std::size_t nodes, std::uint64_t seed, double decay) {
  auto cfg = dophy::eval::default_pipeline(nodes, seed);
  const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
  dophy::tomo::DophyInstrumentation instr(nodes, mapper);
  dophy::net::Network net(cfg.net, &instr);
  dophy::tomo::DophyDecoder decoder(instr.store(kSinkId), mapper);
  dophy::tomo::LinkLossEstimator tracker(cfg.dophy.censor_threshold, decay);

  net.set_delivery_handler([&](const dophy::net::Packet& packet, SimTime) {
    if (const auto decoded = decoder.decode(packet)) tracker.observe_path(*decoded);
  });

  net.run_for(kDegradeAt);

  // Degrade the busiest currently-GOOD link (selection by attempts alone
  // would bias toward already-lossy links whose attempts are inflated by
  // retransmissions).
  LinkKey target{};
  std::uint64_t best_rx = 0;
  for (const auto key : net.link_keys()) {
    const auto& link = net.link(key.from, key.to);
    const auto rx = link.data_attempts() - link.data_losses();
    if (rx > best_rx && link.empirical_loss(net.sim().now()) < 0.15) {
      best_rx = rx;
      target = key;
    }
  }
  TrialResult result;
  const auto pre = tracker.estimate(target);
  if (!pre || best_rx < 200) return result;  // degenerate run
  result.before = pre->loss;
  const double threshold = (result.before + kDegradedLoss) / 2.0;

  net.link(target.from, target.to)
      .replace_loss_process(std::make_unique<dophy::net::ScriptedLoss>(
          std::vector<dophy::net::ScriptedLoss::Step>{{0, kDegradedLoss}}));

  // Poll every epoch until the tracker crosses the detection threshold.
  double detected_at = -1.0;
  net.add_periodic(kEpoch, [&](SimTime now) {
    tracker.end_epoch();
    if (detected_at >= 0.0) return;
    const auto est = tracker.estimate(target);
    if (est && est->loss > threshold) {
      detected_at = static_cast<double>(now) / 1e6;
    }
  });
  net.run_for(1800.0);
  if (detected_at < 0.0) return result;
  result.latency_s = detected_at - kDegradeAt;
  result.ok = true;
  return result;
}

RowSet compute_cell(std::size_t nodes, double decay, std::size_t trials) {
  dophy::common::RunningStats latency, before;
  std::vector<double> latencies;
  int detected = 0, attempted = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto r = run_trial(nodes, 180 + t, decay);
    ++attempted;
    if (!r.ok) continue;
    ++detected;
    latency.add(r.latency_s);
    latencies.push_back(r.latency_s);
    before.add(r.before);
  }
  RowSet rows;
  rows.row()
      .cell(decay, 2)
      .cell(latency.count() ? latency.mean() : -1.0, 1)
      .cell(latencies.size() ? dophy::common::quantile(latencies, 0.9) : -1.0, 1)
      .cell(before.mean(), 3)
      .cell(100.0 * detected / std::max(1, attempted), 0);
  return rows;
}

}  // namespace

void register_a5_detection(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a5-detection";
  spec.figure = "A5";
  spec.claim =
      "Fine-grained is also timely: stronger tracker decay detects a scripted "
      "link degradation within a few epochs";
  spec.axes = "tracker_decay in {1.0, 0.85, 0.6, 0.4}";
  spec.title = "A5: link-degradation detection latency vs tracker decay";
  spec.output_stem = "fig_detection";
  spec.default_trials = 5;
  spec.default_nodes = 60;
  spec.columns = {"tracker_decay", "detect_latency_s_mean", "p90_s",
                  "pre_change_loss", "detected_pct"};
  spec.expected =
      "\nExpected shape: the cumulative estimator (decay 1.0) is slowest and\n"
      "may miss entirely — old evidence anchors it, and once routing switches\n"
      "away from the degraded link the sample stream dries up (you cannot\n"
      "measure a link you stopped using — a fundamental limit of passive\n"
      "retransmission-based tomography).  Stronger decay detects within a few\n"
      "epochs, at the cost of noisier steady-state estimates (see A1).\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const double decay : {1.0, 0.85, 0.6, 0.4}) {
      Cell cell;
      cell.label = "tracker_decay=" + dophy::common::format_double(decay, 2);
      cell.key = pipeline_cell_key(id, cell.label,
                                   dophy::eval::default_pipeline(ctx.nodes, 180),
                                   ctx.trials, /*base_seed=*/180);
      cell.key.set("seed.formula", "180+trial")
          .set("tracker_decay", decay)
          .set("degrade_at_s", kDegradeAt)
          .set("degraded_loss", kDegradedLoss)
          .set("epoch_s", kEpoch);
      cell.compute = [nodes = ctx.nodes, decay, trials = ctx.trials](const CellContext&) {
        return compute_cell(nodes, decay, trials);
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
