// A3 — Path-recording mode ablation: arithmetic-coded hop ids (Dophy's
// choice) vs a fixed 24-bit path hash with sink-side graph search
// (PathZip-style).
//
// The hash is cheaper on the wire for long paths but turns decoding into a
// search that can fail or mis-resolve under big/ dense topologies; id-coding
// costs a few bits per hop but decodes exactly, always.  This bench
// quantifies the trade across network sizes, with dynamics on.

#include <string>

#include "dophy/common/stats.hpp"
#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, bool hash_mode, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 160);
  dophy::eval::add_dynamics(cfg, 300.0, 0.1);
  cfg.dophy.tracker_decay = 0.85;
  cfg.dophy.path_mode =
      hash_mode ? dophy::tomo::PathMode::kHashPath : dophy::tomo::PathMode::kIdCoding;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 600.0 : 1800.0;
  cfg.run_baselines = false;
  return cfg;
}

}  // namespace

void register_a3_pathmode(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "a3-pathmode";
  spec.figure = "A3";
  spec.claim =
      "Ablation: a 24-bit path hash is cheaper on the wire but its graph-search "
      "decode fails increasingly with scale — id-coding decodes exactly, always";
  spec.axes = "nodes in {40,80,160} x mode in {id-coding, hash-24bit}";
  spec.title = "A3: path-recording mode — id coding vs path hash";
  spec.output_stem = "fig_pathmode";
  spec.default_trials = 2;
  spec.default_nodes = 100;
  spec.columns = {"nodes", "mode", "bytes_per_pkt", "decode_fail_pct",
                  "mae", "spearman", "search_per_pkt"};
  spec.expected =
      "\nExpected shape: the hash mode's wire cost is smaller and flat-ish in\n"
      "network size while id-coding grows ~log N per hop; but hash decoding\n"
      "needs a growing graph search and its failure/mis-resolution rate rises\n"
      "with density and path length, which is why Dophy encodes ids.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const std::size_t nodes : {40u, 80u, 160u}) {
      for (const bool hash_mode : {false, true}) {
        Cell cell;
        cell.label = "nodes=" + std::to_string(nodes) +
                     (hash_mode ? ",mode=hash-24bit" : ",mode=id-coding");
        cell.key = pipeline_cell_key(id, cell.label,
                                     cell_config(nodes, hash_mode, ctx.quick),
                                     ctx.trials, /*base_seed=*/1600 + nodes);
        cell.compute = [nodes, hash_mode, quick = ctx.quick,
                        trials = ctx.trials](const CellContext& cc) {
          const auto cfg = cell_config(nodes, hash_mode, quick);
          const auto agg = cc.run_trials(cfg, trials, 1600 + nodes, /*keep_runs=*/true);
          dophy::common::RunningStats search_per_pkt;
          for (const auto& run : agg.runs) {
            search_per_pkt.add(run.hash_candidates_per_packet);
          }
          RowSet rows;
          rows.row()
              .cell(nodes)
              .cell(hash_mode ? "hash-24bit" : "id-coding")
              .cell(agg.bits_per_packet.mean() / 8.0, 2)
              .cell(100.0 * agg.decode_failure_rate.mean(), 2)
              .cell(agg.method("dophy").mae.mean(), 4)
              .cell(agg.method("dophy").spearman.mean(), 3)
              .cell(search_per_pkt.mean(), 1);
          return rows;
        };
        cells.push_back(std::move(cell));
      }
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
