// F7 — Accuracy and overhead vs. network size.
//
// Claim (abstract): "evaluate its performance extensively using large-scale
// simulations."
//
// Node count is swept at constant density (the field grows with N).  Paths
// get longer, per-packet streams carry more hops, and the id alphabet grows
// — Dophy's accuracy and per-hop cost must stay stable.

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval::experiments {

namespace {

dophy::tomo::PipelineConfig cell_config(std::size_t nodes, bool quick) {
  auto cfg = dophy::eval::default_pipeline(nodes, 110);
  dophy::eval::add_dynamics(cfg, 300.0, 0.1);  // mildly dynamic throughout
  cfg.dophy.tracker_decay = 0.85;
  cfg.warmup_s = quick ? 150.0 : 300.0;
  cfg.measure_s = quick ? 600.0 : 1800.0;
  return cfg;
}

}  // namespace

void register_f7_accuracy_scale(ExperimentRegistry& registry) {
  ExperimentSpec spec;
  spec.id = "f7-accuracy-scale";
  spec.figure = "F7";
  spec.claim =
      "Dophy's accuracy and per-hop cost stay stable in large-scale "
      "simulations at constant density";
  spec.axes = "nodes in {25,50,100,200,400} (sweep-owned; ignores --nodes)";
  spec.title = "F7: scaling with network size (constant density)";
  spec.output_stem = "fig_accuracy_scale";
  spec.default_trials = 2;
  spec.default_nodes = 100;
  spec.columns = {"nodes", "mean_path_len", "bits_per_hop", "bytes_per_pkt",
                  "dophy_mae", "em_mae", "dophy_coverage",
                  "parent_chg_per_node_h"};
  spec.expected =
      "\nExpected shape: dophy's MAE and bits/hop stay roughly flat as the\n"
      "network grows (the id model learns the relay distribution, offsetting\n"
      "the log N alphabet); bytes/packet grows only with path length.\n";
  spec.make_cells = [id = spec.id](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (const std::size_t nodes : {25u, 50u, 100u, 200u, 400u}) {
      Cell cell;
      cell.label = "nodes=" + std::to_string(nodes);
      cell.key = pipeline_cell_key(id, cell.label, cell_config(nodes, ctx.quick),
                                   ctx.trials, /*base_seed=*/1100 + nodes);
      cell.compute = [nodes, quick = ctx.quick,
                      trials = ctx.trials](const CellContext& cc) {
        const auto cfg = cell_config(nodes, quick);
        const auto agg = cc.run_trials(cfg, trials, 1100 + nodes);
        RowSet rows;
        rows.row()
            .cell(nodes)
            .cell(agg.path_length.mean(), 2)
            .cell(agg.bits_per_hop.mean(), 2)
            .cell(agg.bits_per_packet.mean() / 8.0, 2)
            .cell(agg.method("dophy").mae.mean(), 4)
            .cell(agg.method("em").mae.mean(), 4)
            .cell(agg.method("dophy").coverage.mean(), 3)
            .cell(agg.parent_changes_per_node_hour.mean(), 2);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  registry.add(std::move(spec));
}

}  // namespace dophy::eval::experiments
