#include "dophy/net/simulator.hpp"

#include <chrono>
#include <stdexcept>

#include "dophy/obs/metrics.hpp"

namespace dophy::net {

void Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  queue_.push(at, std::move(cb));
}

void Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_in: negative delay");
  queue_.push(now_ + delay, std::move(cb));
}

void Simulator::dispatch(const EventQueue::Scheduled& entry) {
  if (trace_hook_ != nullptr) {
    trace_hook_(trace_ctx_, entry.time, entry.seq, entry.event.kind);
  }
  if (entry.event.kind == EventKind::kCallback) {
    queue_.run_callback(entry.event);
  } else {
    entry.event.fn(entry.event.target, entry.event);
  }
}

void Simulator::run_until(SimTime until) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t executed_start = executed_;
  while (!queue_.empty() && queue_.next_time() <= until) {
    const EventQueue::Scheduled entry = queue_.pop();
    now_ = entry.time;
    dispatch(entry);
    ++executed_;
  }
  if (now_ < until) now_ = until;
  busy_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  // One batched add per run_until call keeps the per-event path untouched.
  static const auto c_executed =
      dophy::obs::Registry::global().counter("sim.events.executed");
  c_executed.inc(executed_ - executed_start);
}

void Simulator::run_all() {
  while (step()) {
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const EventQueue::Scheduled entry = queue_.pop();
  now_ = entry.time;
  dispatch(entry);
  ++executed_;
  return true;
}

}  // namespace dophy::net
