#include "dophy/net/simulator.hpp"

#include <stdexcept>

namespace dophy::net {

void Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  if (at < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  queue_.push(at, std::move(cb));
}

void Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_in: negative delay");
  queue_.push(now_ + delay, std::move(cb));
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    auto cb = queue_.pop();
    cb();
    ++executed_;
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  auto cb = queue_.pop();
  cb();
  ++executed_;
  return true;
}

}  // namespace dophy::net
