#pragma once

// Trickle (RFC 6206 style) dissemination of versioned payloads over the
// network's lossy control plane — the realistic alternative to the abstract
// flood model in Network::flood_from_sink.
//
// Each node runs the classic state machine: interval I in [i_min, i_max],
// a random transmission point t in [I/2, I), suppression when k consistent
// messages were heard this interval, interval reset on inconsistency (a
// different version heard).  Payload versions propagate sink-outward; every
// broadcast draws per-neighbor losses on the real control links, so delivery
// latency and byte cost emerge from the protocol instead of being assumed.

#include <cstdint>
#include <functional>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/net/network.hpp"

namespace dophy::net {

struct TrickleConfig {
  double i_min_s = 1.0;
  double i_max_s = 64.0;
  std::uint32_t redundancy_k = 2;
};

struct TrickleStats {
  std::uint64_t transmissions = 0;
  std::uint64_t suppressions = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t versions_published = 0;
  /// Seconds from publish to install, across nodes and versions.
  dophy::common::RunningStats install_latency_s;
};

class TrickleDissemination {
 public:
  /// `install` fires once per (node, version) when the payload first reaches
  /// that node.  The instance must outlive the network run.
  using InstallFn = std::function<void(NodeId node, std::uint8_t version, SimTime at)>;

  TrickleDissemination(Network& network, const TrickleConfig& config, InstallFn install);

  /// Publishes a new payload version from the sink; propagation then runs
  /// entirely inside the simulation.
  void publish(std::uint8_t version, std::size_t payload_bytes);

  [[nodiscard]] const TrickleStats& stats() const noexcept { return stats_; }

  /// Version currently installed at `node` (0xFFFF before anything arrived
  /// — distinct from any uint8 version).
  [[nodiscard]] std::uint16_t installed_version(NodeId node) const;

 private:
  struct NodeState {
    std::uint16_t version = 0xFFFF;  ///< none yet
    std::size_t payload_bytes = 0;
    double interval_s = 1.0;
    std::uint32_t heard_consistent = 0;
    std::uint64_t epoch = 0;  ///< invalidates stale timer events
  };

  /// Typed-event dispatch: timers ride the simulator as flat
  /// kTrickleTimer/kTrickleInterval records (node + epoch payload), so the
  /// Trickle state machine schedules with zero allocations.
  static void event_trampoline(void* target, const Event& ev);
  void schedule_trickle_event(EventKind kind, NodeId id, std::uint64_t epoch,
                              SimTime delay);

  void start_interval(NodeId id, bool reset_to_min);
  void on_timer(NodeId id, std::uint64_t epoch);
  void on_interval_end(NodeId id, std::uint64_t epoch);
  void broadcast(NodeId id);
  void receive(NodeId receiver, NodeId sender, std::uint16_t version,
               std::size_t payload_bytes);

  Network* net_;
  TrickleConfig config_;
  InstallFn install_;
  std::vector<NodeState> states_;
  SimTime publish_time_ = 0;
  TrickleStats stats_;
};

}  // namespace dophy::net
