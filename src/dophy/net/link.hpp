#pragma once

// Directed radio link: a loss process plus empirical counters.  The
// cumulative counters are the evaluation ground truth — tomography estimates
// are scored against `empirical_loss()` over the same window the estimator
// consumed.

#include <cstdint>
#include <memory>

#include "dophy/common/rng.hpp"
#include "dophy/net/loss_model.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class Link {
 public:
  Link(LinkKey key, std::unique_ptr<LossProcess> loss, dophy::common::Rng rng);

  [[nodiscard]] LinkKey key() const noexcept { return key_; }

  /// Performs one transmission attempt of a data frame; updates counters.
  [[nodiscard]] bool attempt_data(SimTime now);

  /// One broadcast/control-frame attempt (beacons, model dissemination);
  /// counted separately so data-plane ground truth stays clean.
  [[nodiscard]] bool attempt_control(SimTime now);

  /// Cumulative data-frame attempt/loss counters.
  [[nodiscard]] std::uint64_t data_attempts() const noexcept { return data_attempts_; }
  [[nodiscard]] std::uint64_t data_losses() const noexcept { return data_losses_; }
  [[nodiscard]] std::uint64_t control_attempts() const noexcept { return control_attempts_; }
  [[nodiscard]] std::uint64_t control_losses() const noexcept { return control_losses_; }

  /// Empirical data-frame loss ratio since construction (NaN-free: returns
  /// the nominal value when no attempts were made).
  [[nodiscard]] double empirical_loss(SimTime now) const noexcept;

  /// Empirical loss over a window given a counter snapshot taken at the
  /// window start.
  struct Snapshot {
    std::uint64_t attempts = 0;
    std::uint64_t losses = 0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept { return {data_attempts_, data_losses_}; }
  [[nodiscard]] double empirical_loss_since(const Snapshot& start, SimTime now) const noexcept;

  [[nodiscard]] double nominal_loss(SimTime now) const noexcept {
    return loss_->nominal_loss(now);
  }

  [[nodiscard]] LossProcess& loss_process() noexcept { return *loss_; }

  /// Swaps the loss process (e.g. scripting a degradation mid-run); counters
  /// are untouched.
  void replace_loss_process(std::unique_ptr<LossProcess> process);

  /// Fault-injection blackout: while active every attempt is lost without
  /// consulting the loss process.  Losses still land in the empirical
  /// counters — a jammed channel genuinely loses frames, so ground truth
  /// stays honest.
  void set_blackout(bool active) noexcept { blackout_ = active; }
  [[nodiscard]] bool blackout() const noexcept { return blackout_; }
  [[nodiscard]] std::uint64_t blackout_losses() const noexcept { return blackout_losses_; }

 private:
  LinkKey key_;
  std::unique_ptr<LossProcess> loss_;
  dophy::common::Rng rng_;
  bool blackout_ = false;
  std::uint64_t data_attempts_ = 0;
  std::uint64_t data_losses_ = 0;
  std::uint64_t control_attempts_ = 0;
  std::uint64_t control_losses_ = 0;
  std::uint64_t blackout_losses_ = 0;
};

}  // namespace dophy::net
