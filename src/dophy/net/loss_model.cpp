#include "dophy/net/loss_model.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <stdexcept>

namespace dophy::net {

namespace {
constexpr double kMinLoss = 0.001;
constexpr double kMaxLoss = 0.95;

double clamp_loss(double p) noexcept { return std::clamp(p, kMinLoss, kMaxLoss); }
}  // namespace

BernoulliLoss::BernoulliLoss(double loss_probability) : p_(loss_probability) {
  if (loss_probability < 0.0 || loss_probability > 1.0) {
    throw std::invalid_argument("BernoulliLoss: probability out of [0,1]");
  }
}

bool BernoulliLoss::attempt_lost(SimTime /*now*/, dophy::common::Rng& rng) {
  return rng.bernoulli(p_);
}

double BernoulliLoss::nominal_loss(SimTime /*now*/) const noexcept { return p_; }

GilbertElliottLoss::GilbertElliottLoss(const Params& params, dophy::common::Rng& seed_rng)
    : params_(params) {
  if (params.mean_good_duration_s <= 0.0 || params.mean_bad_duration_s <= 0.0) {
    throw std::invalid_argument("GilbertElliottLoss: non-positive sojourn time");
  }
  // Start in the stationary distribution so early windows are unbiased.
  const double pi_bad =
      params.mean_bad_duration_s / (params.mean_good_duration_s + params.mean_bad_duration_s);
  bad_ = seed_rng.bernoulli(pi_bad);
  const double mean = bad_ ? params.mean_bad_duration_s : params.mean_good_duration_s;
  next_transition_ = static_cast<SimTime>(seed_rng.exponential(1.0 / mean) * 1e6);
}

void GilbertElliottLoss::maybe_transition(SimTime now, dophy::common::Rng& rng) {
  while (now >= next_transition_) {
    bad_ = !bad_;
    const double mean = bad_ ? params_.mean_bad_duration_s : params_.mean_good_duration_s;
    next_transition_ += static_cast<SimTime>(std::max(1.0, rng.exponential(1.0 / mean) * 1e6));
  }
}

bool GilbertElliottLoss::attempt_lost(SimTime now, dophy::common::Rng& rng) {
  maybe_transition(now, rng);
  return rng.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliottLoss::nominal_loss(SimTime /*now*/) const noexcept {
  const double pi_bad = params_.mean_bad_duration_s /
                        (params_.mean_good_duration_s + params_.mean_bad_duration_s);
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

DriftingLoss::DriftingLoss(const Params& params, dophy::common::Rng& seed_rng)
    : params_(params), current_base_(params.base) {
  if (params.period_s <= 0.0) throw std::invalid_argument("DriftingLoss: non-positive period");
  next_shuffle_ = params.shuffle_interval_s > 0.0
                      ? static_cast<SimTime>(seed_rng.uniform(0.5, 1.5) *
                                             params.shuffle_interval_s * 1e6)
                      : std::numeric_limits<SimTime>::max();
}

void DriftingLoss::maybe_shuffle(SimTime now, dophy::common::Rng& rng) {
  while (now >= next_shuffle_) {
    current_base_ = clamp_loss(params_.base +
                               rng.uniform(-params_.shuffle_spread, params_.shuffle_spread));
    next_shuffle_ += static_cast<SimTime>(
        std::max(1.0, rng.uniform(0.5, 1.5) * params_.shuffle_interval_s * 1e6));
  }
}

bool DriftingLoss::attempt_lost(SimTime now, dophy::common::Rng& rng) {
  maybe_shuffle(now, rng);
  return rng.bernoulli(nominal_loss(now));
}

double DriftingLoss::nominal_loss(SimTime now) const noexcept {
  const double t = static_cast<double>(now) / 1e6;
  const double wave =
      params_.amplitude * std::sin(6.283185307179586 * t / params_.period_s + params_.phase);
  return clamp_loss(current_base_ + wave);
}

ScriptedLoss::ScriptedLoss(std::vector<Step> steps) : steps_(std::move(steps)) {
  if (steps_.empty()) throw std::invalid_argument("ScriptedLoss: empty schedule");
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].from < steps_[i - 1].from) {
      throw std::invalid_argument("ScriptedLoss: schedule not sorted");
    }
  }
}

bool ScriptedLoss::attempt_lost(SimTime now, dophy::common::Rng& rng) {
  return rng.bernoulli(nominal_loss(now));
}

double ScriptedLoss::nominal_loss(SimTime now) const noexcept {
  double loss = steps_.front().loss;
  for (const Step& s : steps_) {
    if (s.from > now) break;
    loss = s.loss;
  }
  return clamp_loss(loss);
}

double distance_loss(double distance, double comm_range, double noise) {
  if (comm_range <= 0.0) return kMaxLoss;
  const double d = std::max(0.0, distance) / comm_range;  // normalized [0, 1+]
  // Logistic ramp centered at ~0.75R: near nodes see a few percent loss,
  // edge-of-range links 40-60%.
  const double base = 0.02 + 0.75 / (1.0 + std::exp(-(d - 0.78) * 10.0));
  return clamp_loss(base + noise);
}

}  // namespace dophy::net
