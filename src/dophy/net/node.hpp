#pragma once

// Per-node state: routing, forwarding queue, duplicate cache, sequence
// numbers, and counters.  Behavior (when to beacon, how to forward) lives in
// Network, which owns all nodes and the event loop.

#include <cstdint>
#include <stdexcept>

#include "dophy/common/dedupe_window.hpp"
#include "dophy/common/ring_buffer.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/net/routing.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

struct NodeStats {
  std::uint64_t generated = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t duplicates_discarded = 0;
};

class Node {
 public:
  Node(NodeId id, bool is_sink, const RoutingConfig& routing_config,
       dophy::common::Rng rng, std::size_t queue_capacity);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] bool is_sink() const noexcept { return is_sink_; }

  [[nodiscard]] RoutingState& routing() noexcept { return routing_; }
  [[nodiscard]] const RoutingState& routing() const noexcept { return routing_; }
  [[nodiscard]] dophy::common::Rng& rng() noexcept { return rng_; }

  /// Forwarding queue; returns false (packet rejected) when full.
  [[nodiscard]] bool enqueue(Packet&& packet) {
    if (queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(packet));
    return true;
  }
  [[nodiscard]] bool queue_empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  [[nodiscard]] Packet dequeue() {
    if (queue_.empty()) throw std::logic_error("Node::dequeue: empty queue");
    return queue_.take_front();
  }

  /// Radio busy flag (one outstanding unicast at a time).
  [[nodiscard]] bool tx_busy() const noexcept { return tx_busy_; }
  void set_tx_busy(bool busy) noexcept { tx_busy_ = busy; }

  /// Duplicate suppression keyed by (origin, seq, hop count) — the CTP
  /// convention: a looped packet returns with a higher hop count and is NOT
  /// a duplicate, so it keeps forwarding until routes heal or the TTL kills
  /// it visibly.  Returns true if already seen (records it otherwise).
  /// Inline: runs once per packet reception.
  [[nodiscard]] bool check_and_mark_seen(std::uint64_t dedupe_key) {
    return seen_.check_and_insert(dedupe_key);
  }

  /// At most one pending triggered beacon at a time (Trickle-style reset).
  [[nodiscard]] bool beacon_trigger_pending() const noexcept { return beacon_pending_; }
  void set_beacon_trigger_pending(bool pending) noexcept { beacon_pending_ = pending; }

  /// Churn state: a dead node neither beacons, generates, forwards, nor
  /// receives.
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) noexcept { alive_ = alive; }

  /// Clock-rate factor (fault injection): 1.0 is nominal; a skewed node's
  /// periodic activities (data generation, beacons) stretch or shrink by
  /// this factor, modeling oscillator drift.
  [[nodiscard]] double clock_factor() const noexcept { return clock_factor_; }
  void set_clock_factor(double factor) noexcept {
    clock_factor_ = factor > 0.0 ? factor : 1.0;
  }

  [[nodiscard]] std::uint16_t next_data_seq() noexcept { return data_seq_++; }
  [[nodiscard]] std::uint16_t next_beacon_seq() noexcept { return beacon_seq_++; }

  [[nodiscard]] NodeStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NodeStats& stats() const noexcept { return stats_; }

 private:
  NodeId id_;
  bool is_sink_;
  dophy::common::Rng rng_;
  RoutingState routing_;
  /// Ring buffers instead of std::deque: a sliding FIFO window in a deque
  /// allocates/frees chunk nodes forever; these reach a fixed capacity and
  /// stay heap-silent (the event loop's zero-allocation steady state).
  dophy::common::RingBuffer<Packet> queue_;
  std::size_t queue_capacity_;
  bool tx_busy_ = false;
  std::uint16_t data_seq_ = 0;
  std::uint16_t beacon_seq_ = 0;
  bool beacon_pending_ = false;
  bool alive_ = true;
  double clock_factor_ = 1.0;
  /// Open-addressed sliding-window dedupe: fixed storage, zero allocations
  /// in steady state, no per-key nodes to hash through.
  dophy::common::DedupeWindow seen_;
  NodeStats stats_;
};

}  // namespace dophy::net
