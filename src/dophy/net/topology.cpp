#include "dophy/net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace dophy::net {

namespace {

double dist(const Vec2& a, const Vec2& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Topology Topology::generate(const TopologyConfig& config, dophy::common::Rng& rng) {
  if (config.node_count < 2) throw std::invalid_argument("Topology: need >= 2 nodes");
  if (config.comm_range <= 0.0 || config.field_size <= 0.0) {
    throw std::invalid_argument("Topology: non-positive dimensions");
  }

  for (std::uint32_t attempt = 0; attempt < config.max_generation_attempts; ++attempt) {
    Topology topo;
    topo.config_ = config;
    topo.positions_.resize(config.node_count);

    topo.positions_[kSinkId] =
        config.sink_placement == SinkPlacement::kCorner
            ? Vec2{0.0, 0.0}
            : Vec2{config.field_size / 2.0, config.field_size / 2.0};

    if (config.layout == Layout::kRandom) {
      for (std::size_t i = 1; i < config.node_count; ++i) {
        topo.positions_[i] = Vec2{rng.uniform(0.0, config.field_size),
                                  rng.uniform(0.0, config.field_size)};
      }
    } else {
      // Near-square grid with slight jitter so link distances differ.
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(config.node_count))));
      const double step = config.field_size / static_cast<double>(side);
      for (std::size_t i = 1; i < config.node_count; ++i) {
        const double gx = static_cast<double>(i % side) * step;
        const double gy = static_cast<double>(i / side) * step;
        topo.positions_[i] = Vec2{gx + rng.uniform(-step * 0.1, step * 0.1),
                                  gy + rng.uniform(-step * 0.1, step * 0.1)};
      }
    }

    topo.build_adjacency();
    if (topo.is_connected()) return topo;
  }
  throw std::runtime_error(
      "Topology::generate: could not produce a connected topology; "
      "increase comm_range or density");
}

void Topology::build_adjacency() {
  adjacency_.assign(positions_.size(), {});
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    for (std::size_t j = i + 1; j < positions_.size(); ++j) {
      if (dist(positions_[i], positions_[j]) <= config_.comm_range) {
        adjacency_[i].push_back(static_cast<NodeId>(j));
        adjacency_[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
}

std::span<const NodeId> Topology::neighbors(NodeId id) const {
  return adjacency_.at(id);
}

double Topology::distance(NodeId a, NodeId b) const {
  return dist(positions_.at(a), positions_.at(b));
}

bool Topology::are_neighbors(NodeId a, NodeId b) const {
  const auto& adj = adjacency_.at(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool Topology::is_connected() const {
  const auto hops = hops_to_sink();
  return std::none_of(hops.begin(), hops.end(),
                      [](std::uint16_t h) { return h == kInvalidHops; });
}

std::vector<std::uint16_t> Topology::hops_to_sink() const {
  std::vector<std::uint16_t> hops(positions_.size(), kInvalidHops);
  std::queue<NodeId> frontier;
  hops[kSinkId] = 0;
  frontier.push(kSinkId);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adjacency_[u]) {
      if (hops[v] == kInvalidHops) {
        hops[v] = static_cast<std::uint16_t>(hops[u] + 1);
        frontier.push(v);
      }
    }
  }
  return hops;
}

std::vector<LinkKey> Topology::directed_links() const {
  std::vector<LinkKey> links;
  for (std::size_t u = 0; u < adjacency_.size(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      links.push_back(LinkKey{static_cast<NodeId>(u), v});
    }
  }
  return links;
}

}  // namespace dophy::net
