#pragma once

// ARQ MAC model.  A unicast transmission retries until the receiver's
// acknowledgement arrives or the attempt budget is exhausted.  The whole
// exchange is resolved in one call (attempt-by-attempt against the link's
// loss process, so burstiness is honored) and the resulting delay is
// returned for the caller to schedule delivery.
//
// Retransmission-count semantics: `attempts_to_first_rx` is the attempt
// index of the first data frame the receiver heard — the quantity Dophy
// encodes (the receiver reads it from the frame's attempt counter, as a
// TinyOS implementation reads the MAC retry field).  It is Geometric(1-p)
// in the forward loss p, independent of ACK losses; ACK losses only add
// duplicate attempts, which show up in `total_attempts` (energy cost).

#include <cstdint>

#include "dophy/net/link.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

struct MacConfig {
  std::uint32_t max_attempts = 8;     ///< 1 original + 7 retransmissions
  bool model_ack_loss = true;         ///< draw ACK losses on the reverse link
  SimTime attempt_duration = 6 * kMillisecond;  ///< CSMA backoff + frame + ACK window
  SimTime queue_service_delay = 2 * kMillisecond;
};

struct TxOutcome {
  bool delivered = false;             ///< receiver heard at least one copy
  std::uint32_t attempts_to_first_rx = 0;  ///< valid when delivered
  std::uint32_t total_attempts = 0;   ///< sender-side attempt count
  SimTime delay = 0;                  ///< time from start to ACK/give-up
};

class ArqMac {
 public:
  explicit ArqMac(const MacConfig& config);

  /// Runs a full ARQ exchange over `forward`; ACKs travel over `reverse`
  /// (nullable disables ACK-loss modeling regardless of config).
  [[nodiscard]] TxOutcome transmit(Link& forward, Link* reverse, SimTime now,
                                   dophy::common::Rng& rng) const;

  [[nodiscard]] const MacConfig& config() const noexcept { return config_; }

 private:
  MacConfig config_;
};

}  // namespace dophy::net
