#pragma once

// Data packet model plus the instrumentation hook through which the
// tomography layer rides in packets.  dophy::net knows nothing about
// arithmetic coding: the measurement blob is opaque bytes plus enough
// bookkeeping (logical bit length, small in-flight state, model version)
// for the simulator to account wire overhead honestly.

#include <array>
#include <cstdint>
#include <vector>

#include "dophy/net/types.hpp"

namespace dophy::net {

/// Opaque in-packet measurement field maintained by a PacketInstrumentation.
struct MeasurementBlob {
  std::vector<std::uint8_t> bytes;  ///< encoded stream (padded to bytes)
  std::uint32_t logical_bits = 0;   ///< exact bit length of the stream
  /// Small fixed-size state carried while in flight (e.g. suspended
  /// arithmetic-coder registers); squeezed out at the sink.
  std::array<std::uint8_t, 16> state{};
  std::uint8_t state_size = 0;
  std::uint8_t model_version = 0;
  /// Set when a hop could not append (payload budget exhausted); the sink
  /// must not trust the stream to describe the whole path.
  bool truncated = false;
  /// Set by fault injection when the measurement field was stripped in
  /// transit: the data packet arrived but its report is gone.
  bool dropped = false;

  /// Bytes this field occupies on the air for one transmission; zero when
  /// no measurement layer initialized the packet.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    if (logical_bits == 0 && state_size == 0 && bytes.empty()) return 0;
    return (logical_bits + 7) / 8 + state_size + /*version*/ 1 + /*bit count*/ 2;
  }

  /// Returns the blob to its freshly-constructed state while keeping the
  /// byte buffer's capacity (packet-pool recycling).
  void reset() noexcept {
    bytes.clear();
    logical_bits = 0;
    state.fill(0);
    state_size = 0;
    model_version = 0;
    truncated = false;
    dropped = false;
  }
};

/// Ground-truth record of one completed hop (simulator-side only; a real
/// deployment does not have this).
struct HopRecord {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  std::uint32_t attempts_to_first_rx = 0;
  std::uint32_t total_attempts = 0;
  SimTime at = 0;
};

struct Packet {
  NodeId origin = kInvalidNode;
  std::uint16_t seq = 0;
  std::uint16_t hop_count = 0;
  SimTime created_at = 0;
  /// obs::SpanTrace lifecycle span id (0 = tracing off); threaded through to
  /// the sink so the decode span can link back to the packet's lifetime.
  std::uint64_t span = 0;
  MeasurementBlob blob;

  /// Ground truth, appended by the simulator as the packet moves.
  std::vector<HopRecord> true_hops;

  [[nodiscard]] std::uint32_t flow_key() const noexcept {
    return (static_cast<std::uint32_t>(origin) << 16) | seq;
  }

  /// Returns the packet to its freshly-constructed state while keeping
  /// vector capacities (packet-pool recycling): a recycled packet is
  /// indistinguishable from `Packet{}` except for reserved storage.
  void reset() noexcept {
    origin = kInvalidNode;
    seq = 0;
    hop_count = 0;
    created_at = 0;
    span = 0;
    blob.reset();
    true_hops.clear();
  }
};

/// Hook implemented by the tomography layer.  Called synchronously from the
/// simulator's data path.
class PacketInstrumentation {
 public:
  virtual ~PacketInstrumentation() = default;

  /// A new packet was created at `origin`; initialize the blob.
  virtual void on_origin(Packet& packet, NodeId origin, SimTime now) = 0;

  /// `receiver` just accepted the packet from `sender`, whose winning frame
  /// carried attempt counter `attempts`.  Called for every hop including
  /// final delivery at the sink (receiver == kSinkId).
  virtual void on_hop_received(Packet& packet, NodeId receiver, NodeId sender,
                               std::uint32_t attempts, SimTime now) = 0;
};

}  // namespace dophy::net
