#include "dophy/net/routing.hpp"

#include <algorithm>

#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::net {

namespace {
/// Emits the parent-change counter + trace event shared by both adoption
/// paths in select_parent.
void note_parent_change(NodeId self, NodeId old_parent, NodeId new_parent, double metric,
                        SimTime now) {
  static const auto c_changes =
      dophy::obs::Registry::global().counter("net.parent.changes");
  c_changes.inc();
  DOPHY_DEBUG("routing: node %u parent %u -> %u (metric %.2f)",
              static_cast<unsigned>(self), static_cast<unsigned>(old_parent),
              static_cast<unsigned>(new_parent), metric);
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kParentChange)) {
    tr.event(dophy::obs::EventKind::kParentChange, static_cast<std::uint64_t>(now))
        .u64("node", self)
        .u64("old", old_parent)
        .u64("new", new_parent)
        .f64("metric", metric);
  }
}
}  // namespace

RoutingState::RoutingState(NodeId self, bool is_sink, const RoutingConfig& config)
    : self_(self), is_sink_(is_sink), config_(config),
      path_etx_(is_sink ? 0.0 : kInfiniteEtx) {
  table_.reserve(16);  // typical radio degree; avoids early growth churn
}

RoutingState::NeighborEntry* RoutingState::find(NodeId neighbor) noexcept {
  for (auto& e : table_) {
    if (e.id == neighbor) return &e;
  }
  return nullptr;
}

const RoutingState::NeighborEntry* RoutingState::find(NodeId neighbor) const noexcept {
  for (const auto& e : table_) {
    if (e.id == neighbor) return &e;
  }
  return nullptr;
}

RoutingState::NeighborEntry& RoutingState::entry(NodeId neighbor) {
  if (NeighborEntry* e = find(neighbor)) return *e;
  return table_.emplace_back(neighbor, config_.estimator);
}

void RoutingState::on_beacon(NodeId from, double path_etx, std::uint16_t beacon_seq,
                             SimTime now) {
  if (from == self_) return;
  NeighborEntry& e = entry(from);
  e.advertised_path_etx = path_etx;
  e.last_heard = now;
  e.quality.on_beacon(beacon_seq);
}

void RoutingState::on_data_tx(NodeId to, std::uint32_t total_attempts, bool delivered) {
  entry(to).quality.on_data_tx(total_attempts, delivered);
  if (to == parent_) refresh_path_etx();
}

void RoutingState::expire_stale(SimTime now) {
  const SimTime timeout = static_cast<SimTime>(config_.neighbor_timeout_s * 1e6);
  std::erase_if(table_, [&](const NeighborEntry& e) {
    return e.last_heard + timeout < now && e.id != parent_;
  });
}

bool RoutingState::select_parent(SimTime now) {
  if (is_sink_) return false;

  // One fused pass: expire stale neighbors by compacting in place (same
  // survivors, same order as expire_stale) while scoring the keepers — this
  // runs on every beacon reception, and two scans over the table showed up
  // in whole-run profiles.
  const SimTime timeout = static_cast<SimTime>(config_.neighbor_timeout_s * 1e6);
  NodeId best = kInvalidNode;
  double best_metric = kInfiniteEtx;
  std::size_t w = 0;
  for (std::size_t r = 0; r < table_.size(); ++r) {
    if (table_[r].last_heard + timeout < now && table_[r].id != parent_) continue;
    if (w != r) table_[w] = std::move(table_[r]);
    NeighborEntry& e = table_[w];
    ++w;
    if (e.advertised_path_etx == kInfiniteEtx) continue;
    // Gradient rule: only consider neighbors strictly closer to the sink
    // than our own current position; prevents mutual-parent loops under
    // consistent views (stale views are caught by the datapath TTL).
    if (path_etx_ != kInfiniteEtx && e.advertised_path_etx >= path_etx_) continue;
    const double metric = e.quality.etx() + e.advertised_path_etx;
    // Tie-break on id so the choice never depends on storage order.
    if (metric < best_metric || (metric == best_metric && e.id < best)) {
      best_metric = metric;
      best = e.id;
    }
  }
  table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(w), table_.end());

  if (best == kInvalidNode) {
    // No feasible candidate under the gradient rule; if we also have no
    // working parent, fall back to the global minimum so nodes (re)join.
    if (parent_ == kInvalidNode) {
      for (auto& e : table_) {
        if (e.advertised_path_etx == kInfiniteEtx) continue;
        const double metric = e.quality.etx() + e.advertised_path_etx;
        if (metric < best_metric || (metric == best_metric && e.id < best)) {
          best_metric = metric;
          best = e.id;
        }
      }
      if (best == kInvalidNode) return false;
      note_parent_change(self_, parent_, best, best_metric, now);
      parent_ = best;
      ++parent_changes_;
      refresh_path_etx();
      return true;
    }
    return false;
  }

  if (parent_ == best) {
    refresh_path_etx();
    return false;
  }

  double current_metric = kInfiniteEtx;
  if (parent_ != kInvalidNode) {
    const NeighborEntry* e = find(parent_);
    if (e != nullptr && e->advertised_path_etx != kInfiniteEtx) {
      current_metric = e->quality.etx() + e->advertised_path_etx;
    }
  }

  if (best_metric + config_.switch_hysteresis <= current_metric) {
    note_parent_change(self_, parent_, best, best_metric, now);
    parent_ = best;
    ++parent_changes_;
    refresh_path_etx();
    return true;
  }
  refresh_path_etx();
  return false;
}

void RoutingState::refresh_path_etx() {
  if (is_sink_) {
    path_etx_ = 0.0;
    return;
  }
  if (parent_ == kInvalidNode) {
    path_etx_ = kInfiniteEtx;
    return;
  }
  const NeighborEntry* e = find(parent_);
  if (e == nullptr || e->advertised_path_etx == kInfiniteEtx) {
    path_etx_ = kInfiniteEtx;
    parent_ = kInvalidNode;
    return;
  }
  path_etx_ = e->quality.etx() + e->advertised_path_etx;
}

NodeId RoutingState::select_forwarder(dophy::common::Rng& rng) const {
  if (parent_ == kInvalidNode || config_.opportunistic_fraction <= 0.0 ||
      !rng.bernoulli(config_.opportunistic_fraction)) {
    return parent_;
  }
  // Feasible alternates: gradient-rule candidates other than the parent,
  // with a bounded metric handicap so we never detour through junk links.
  std::vector<NodeId> alternates;
  const double parent_metric = path_etx_;
  for (const auto& e : table_) {
    if (e.id == parent_ || e.advertised_path_etx == kInfiniteEtx) continue;
    if (path_etx_ != kInfiniteEtx && e.advertised_path_etx >= path_etx_) continue;
    const double metric = e.quality.etx() + e.advertised_path_etx;
    if (metric <= parent_metric + 2.0) alternates.push_back(e.id);
  }
  if (alternates.empty()) return parent_;
  // Sorted so the draw never depends on storage order.
  std::sort(alternates.begin(), alternates.end());
  return alternates[rng.next_below(alternates.size())];
}

double RoutingState::advertise_etx() {
  if (is_sink_) return 0.0;
  if (path_etx_ == kInfiniteEtx) {
    advertised_etx_ = kInfiniteEtx;
    return kInfiniteEtx;
  }
  if (advertised_etx_ == kInfiniteEtx) {
    advertised_etx_ = path_etx_;  // first valid route: jump, don't smooth
  } else {
    advertised_etx_ = config_.advertise_alpha * advertised_etx_ +
                      (1.0 - config_.advertise_alpha) * path_etx_;
  }
  return advertised_etx_;
}

double RoutingState::link_etx(NodeId neighbor) const {
  const NeighborEntry* e = find(neighbor);
  return e == nullptr ? config_.estimator.initial_etx : e->quality.etx();
}

std::vector<NodeId> RoutingState::known_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& e : table_) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

double RoutingState::neighbor_path_etx(NodeId neighbor) const {
  const NeighborEntry* e = find(neighbor);
  return e == nullptr ? kInfiniteEtx : e->advertised_path_etx;
}

}  // namespace dophy::net
