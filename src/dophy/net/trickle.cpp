#include "dophy/net/trickle.hpp"

#include <algorithm>
#include <stdexcept>

#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::net {

namespace {
struct TrickleMetrics {
  dophy::obs::Counter tx, suppressions, resets, bytes;

  static const TrickleMetrics& get() {
    static const TrickleMetrics m;
    return m;
  }

 private:
  TrickleMetrics() {
    auto& r = dophy::obs::Registry::global();
    tx = r.counter("trickle.tx");
    suppressions = r.counter("trickle.suppressions");
    resets = r.counter("trickle.resets");
    bytes = r.counter("trickle.bytes");
  }
};
}  // namespace

TrickleDissemination::TrickleDissemination(Network& network, const TrickleConfig& config,
                                           InstallFn install)
    : net_(&network), config_(config), install_(std::move(install)) {
  if (config.i_min_s <= 0.0 || config.i_max_s < config.i_min_s) {
    throw std::invalid_argument("TrickleDissemination: bad interval bounds");
  }
  if (!install_) throw std::invalid_argument("TrickleDissemination: install callback required");
  states_.resize(net_->node_count());
  for (auto& s : states_) s.interval_s = config.i_min_s;
}

std::uint16_t TrickleDissemination::installed_version(NodeId node) const {
  return states_.at(node).version;
}

void TrickleDissemination::publish(std::uint8_t version, std::size_t payload_bytes) {
  NodeState& sink = states_[kSinkId];
  sink.version = version;
  sink.payload_bytes = payload_bytes;
  publish_time_ = net_->sim().now();
  ++stats_.versions_published;
  install_(kSinkId, version, publish_time_);
  // New data: the sink restarts at the minimum interval; other nodes reset
  // when they hear the inconsistency.
  start_interval(kSinkId, /*reset_to_min=*/true);
}

void TrickleDissemination::event_trampoline(void* target, const Event& ev) {
  auto* self = static_cast<TrickleDissemination*>(target);
  const NodeId id = ev.payload.trickle.node;
  const std::uint64_t epoch = ev.payload.trickle.epoch;
  switch (ev.kind) {
    case EventKind::kTrickleTimer: self->on_timer(id, epoch); break;
    case EventKind::kTrickleInterval: self->on_interval_end(id, epoch); break;
    default: break;
  }
}

void TrickleDissemination::schedule_trickle_event(EventKind kind, NodeId id,
                                                  std::uint64_t epoch, SimTime delay) {
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = this;
  ev.kind = kind;
  ev.payload.trickle.node = id;
  ev.payload.trickle.epoch = epoch;
  net_->sim().schedule_event_in(delay, ev);
}

void TrickleDissemination::start_interval(NodeId id, bool reset_to_min) {
  NodeState& s = states_[id];
  if (reset_to_min) {
    s.interval_s = config_.i_min_s;
  } else {
    s.interval_s = std::min(s.interval_s * 2.0, config_.i_max_s);
  }
  s.heard_consistent = 0;
  const std::uint64_t epoch = ++s.epoch;
  // Transmission point uniform in [I/2, I).
  const double t = s.interval_s * net_->node(id).rng().uniform(0.5, 1.0);
  schedule_trickle_event(EventKind::kTrickleTimer, id, epoch,
                         static_cast<SimTime>(t * 1e6));
  // End-of-interval event doubles I and starts the next round.
  schedule_trickle_event(EventKind::kTrickleInterval, id, epoch,
                         static_cast<SimTime>(s.interval_s * 1e6));
}

void TrickleDissemination::on_interval_end(NodeId id, std::uint64_t epoch) {
  if (states_[id].epoch != epoch) return;  // interval was reset meanwhile
  start_interval(id, /*reset_to_min=*/false);
}

void TrickleDissemination::on_timer(NodeId id, std::uint64_t epoch) {
  NodeState& s = states_[id];
  if (s.epoch != epoch) return;            // stale timer after a reset
  if (s.version == 0xFFFF) return;         // nothing to share yet
  if (!net_->node(id).alive()) return;
  if (s.heard_consistent >= config_.redundancy_k) {
    ++stats_.suppressions;
    TrickleMetrics::get().suppressions.inc();
    return;
  }
  broadcast(id);
}

void TrickleDissemination::broadcast(NodeId id) {
  NodeState& s = states_[id];
  ++stats_.transmissions;
  stats_.bytes_sent += s.payload_bytes;
  TrickleMetrics::get().tx.inc();
  TrickleMetrics::get().bytes.inc(s.payload_bytes);
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kTrickleTx)) {
    tr.event(dophy::obs::EventKind::kTrickleTx,
             static_cast<std::uint64_t>(net_->sim().now()))
        .u64("node", id)
        .u64("version", s.version)
        .u64("bytes", s.payload_bytes);
  }
  for (const NodeId w : net_->topology().neighbors(id)) {
    Link& l = net_->link(id, w);
    if (l.attempt_control(net_->sim().now()) && net_->node(w).alive()) {
      receive(w, id, s.version, s.payload_bytes);
    }
  }
}

void TrickleDissemination::receive(NodeId receiver, NodeId /*sender*/, std::uint16_t version,
                                   std::size_t payload_bytes) {
  NodeState& s = states_[receiver];
  if (s.version == version) {
    ++s.heard_consistent;
    return;
  }
  // Inconsistency.  Newer data: adopt + install + reset.  (uint8 versions
  // are monotone within a run; a full implementation would compare with
  // serial-number arithmetic.)
  const bool newer = s.version == 0xFFFF ||
                     static_cast<std::uint8_t>(version) >
                         static_cast<std::uint8_t>(s.version);
  if (newer) {
    s.version = version;
    s.payload_bytes = payload_bytes;
    install_(receiver, static_cast<std::uint8_t>(version), net_->sim().now());
    stats_.install_latency_s.add(
        static_cast<double>(net_->sim().now() - publish_time_) / 1e6);
  }
  // Either direction of inconsistency resets the interval so the gossip
  // burst propagates fast.
  TrickleMetrics::get().resets.inc();
  DOPHY_DEBUG("trickle: node %u inconsistency reset (heard v%u, adopted=%d)",
              static_cast<unsigned>(receiver), static_cast<unsigned>(version),
              newer ? 1 : 0);
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kTrickleReset)) {
    tr.event(dophy::obs::EventKind::kTrickleReset,
             static_cast<std::uint64_t>(net_->sim().now()))
        .u64("node", receiver)
        .u64("version", version)
        .boolean("adopted", newer);
  }
  start_interval(receiver, /*reset_to_min=*/true);
}

}  // namespace dophy::net
