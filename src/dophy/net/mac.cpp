#include "dophy/net/mac.hpp"

#include <stdexcept>

namespace dophy::net {

ArqMac::ArqMac(const MacConfig& config) : config_(config) {
  if (config.max_attempts == 0) throw std::invalid_argument("ArqMac: max_attempts must be >= 1");
}

TxOutcome ArqMac::transmit(Link& forward, Link* reverse, SimTime now,
                           dophy::common::Rng& /*rng*/) const {
  // Loss draws use each link's own RNG stream; the node RNG parameter is
  // reserved for future backoff randomization.
  TxOutcome out;
  for (std::uint32_t attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    const SimTime attempt_time = now + static_cast<SimTime>(attempt - 1) * config_.attempt_duration;
    ++out.total_attempts;
    const bool data_ok = forward.attempt_data(attempt_time);
    if (data_ok && !out.delivered) {
      out.delivered = true;
      out.attempts_to_first_rx = attempt;
    }
    if (data_ok) {
      const bool ack_ok = (!config_.model_ack_loss || reverse == nullptr)
                              ? true
                              : reverse->attempt_control(attempt_time);
      if (ack_ok) {
        out.delay = static_cast<SimTime>(attempt) * config_.attempt_duration;
        return out;
      }
    }
  }
  out.delay = static_cast<SimTime>(config_.max_attempts) * config_.attempt_duration;
  return out;
}

}  // namespace dophy::net
