#include "dophy/net/trace.hpp"

namespace dophy::net {

void TraceCollector::record(PacketOutcome outcome) {
  if (outcome.packet.origin >= per_origin_.size()) {
    per_origin_.resize(outcome.packet.origin + std::size_t{1});
  }
  auto& tally = per_origin_[outcome.packet.origin];
  ++tally.generated;
  if (outcome.fate == PacketFate::kDelivered) {
    ++tally.delivered;
    ++delivered_;
    latency_.add(static_cast<double>(outcome.finished_at - outcome.packet.created_at) / 1e6);
    hops_.add(static_cast<double>(outcome.packet.hop_count));
  } else {
    ++dropped_;
  }
  if (store_outcomes_) outcomes_.push_back(std::move(outcome));
}

double TraceCollector::delivery_ratio() const noexcept {
  const std::uint64_t total = delivered_ + dropped_;
  return total == 0 ? 1.0 : static_cast<double>(delivered_) / static_cast<double>(total);
}

void TraceCollector::merge_from(const TraceCollector& other) {
  if (per_origin_.size() < other.per_origin_.size()) {
    per_origin_.resize(other.per_origin_.size());
  }
  for (std::size_t i = 0; i < other.per_origin_.size(); ++i) {
    per_origin_[i].generated += other.per_origin_[i].generated;
    per_origin_[i].delivered += other.per_origin_[i].delivered;
  }
  latency_.merge(other.latency_);
  hops_.merge(other.hops_);
  delivered_ += other.delivered_;
  dropped_ += other.dropped_;
  if (store_outcomes_) {
    outcomes_.insert(outcomes_.end(), other.outcomes_.begin(), other.outcomes_.end());
  }
}

void TraceCollector::clear() noexcept {
  outcomes_.clear();
  per_origin_.clear();
  latency_ = {};
  hops_ = {};
  delivered_ = 0;
  dropped_ = 0;
}

}  // namespace dophy::net
