#include "dophy/net/pdes/worker_team.hpp"

namespace dophy::net::pdes {

namespace {
/// Spin budget before a worker parks on the condvar.  Small on purpose: on
/// an oversubscribed box (more team threads than cores) yielding quickly is
/// what lets the sibling holding the next job actually run.
constexpr int kSpinIters = 256;
}  // namespace

WorkerTeam::WorkerTeam(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerTeam::~WorkerTeam() {
  stop_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerTeam::run(std::size_t jobs, JobFn fn, void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  jobs_ = jobs;
  next_.store(0, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  // The epoch bump is the release that publishes fn_/ctx_/jobs_ to workers.
  // Always bump under the mutex: a worker checks the epoch under this mutex
  // right before parking, so bumping outside it could slip between that
  // check and the wait (classic store-buffering deadlock).  Uncontended
  // lock + empty notify_all costs nanoseconds per window.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  if (sleepers_.load(std::memory_order_acquire) != 0) wake_.notify_all();
  work();
  // Wait for every worker to finish the epoch: afterwards none of them can
  // touch fn_/jobs_/next_ again, so the next run() may overwrite freely.
  while (done_.load(std::memory_order_acquire) != workers_.size()) {
    std::this_thread::yield();
  }
}

void WorkerTeam::work() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs_) return;
    fn_(ctx_, i);
  }
}

void WorkerTeam::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for a new epoch: spin a little, then park.
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (++spins < kSpinIters) {
        std::this_thread::yield();
        continue;
      }
      sleepers_.fetch_add(1, std::memory_order_acq_rel);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return epoch_.load(std::memory_order_acquire) != seen; });
      }
      sleepers_.fetch_sub(1, std::memory_order_acq_rel);
      break;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    work();
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace dophy::net::pdes
