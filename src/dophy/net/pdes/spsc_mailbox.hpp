#pragma once

// Bounded single-producer/single-consumer mailbox for cross-LP events.
//
// Each ordered LP pair (src, dst) owns one mailbox: the thread executing LP
// `src` is the only producer during a conservative window, and the barrier
// drain (all LPs quiescent) is the only consumer.  The hot path is a
// power-of-two ring with acquire/release head/tail — no locks, no
// allocation.  When a burst overflows the ring, messages spill to a
// mutex-guarded vector; FIFO order is preserved by keeping the producer in
// spill mode until the next drain empties both (cross-LP message order
// within a pair is part of the deterministic replay contract, so the
// overflow path must not reorder).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace dophy::net::pdes {

template <typename T>
class SpscMailbox {
 public:
  /// `capacity_pow2` must be a power of two (ring slot count).
  explicit SpscMailbox(std::size_t capacity_pow2 = 256)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    static_assert(std::atomic<std::size_t>::is_always_lock_free);
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  /// Producer side.  Never blocks and never fails; a full ring diverts to
  /// the overflow spill (counted, so pressure is observable).
  void push(T value) {
    if (!spilling_) {
      const std::size_t tail = tail_.load(std::memory_order_relaxed);
      const std::size_t head = head_.load(std::memory_order_acquire);
      if (tail - head < slots_.size()) {
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return;
      }
      spilling_ = true;  // producer-private; consumer resets it at drain
    }
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    overflow_.push_back(std::move(value));
    ++spilled_;
  }

  /// Consumer side: moves every pending message into `out` in FIFO order.
  /// Must only run while the producer is quiescent (barrier context) —
  /// that is what allows it to reset the producer's spill flag.
  void drain_into(std::vector<T>& out) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    for (; head != tail; ++head) {
      out.push_back(std::move(slots_[head & mask_]));
    }
    head_.store(head, std::memory_order_release);
    if (spilling_) {
      const std::lock_guard<std::mutex> lock(overflow_mutex_);
      for (T& v : overflow_) out.push_back(std::move(v));
      overflow_.clear();
      spilling_ = false;
    }
  }

  /// True when nothing is pending (barrier context only).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           !spilling_;
  }

  /// Messages that took the overflow path since construction (ring-sizing
  /// telemetry).
  [[nodiscard]] std::uint64_t spilled_count() const noexcept { return spilled_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  /// Head/tail on separate cache lines: the producer writes tail_ every
  /// push, the consumer writes head_ every drain.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  bool spilling_ = false;
  std::uint64_t spilled_ = 0;
  std::mutex overflow_mutex_;
  std::vector<T> overflow_;
};

}  // namespace dophy::net::pdes
