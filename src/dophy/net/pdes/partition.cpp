#include "dophy/net/pdes/partition.hpp"

#include <algorithm>
#include <queue>

namespace dophy::net::pdes {

namespace {

/// BFS hop distances from `sources` over the radio graph (0xFFFF when
/// unreachable).
std::vector<std::uint16_t> bfs_hops(const Topology& topo, const std::vector<NodeId>& sources) {
  std::vector<std::uint16_t> dist(topo.node_count(), 0xFFFF);
  std::queue<NodeId> frontier;
  for (const NodeId s : sources) {
    dist[s] = 0;
    frontier.push(s);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : topo.neighbors(u)) {
      if (dist[v] != 0xFFFF) continue;
      dist[v] = static_cast<std::uint16_t>(dist[u] + 1);
      frontier.push(v);
    }
  }
  return dist;
}

}  // namespace

Partition build_partition(const Topology& topology, std::uint32_t lp_count) {
  const std::size_t n = topology.node_count();
  Partition part;
  part.lp_count = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(lp_count, static_cast<std::uint32_t>(n)));
  part.lp_of.assign(n, 0);
  part.members.resize(part.lp_count);
  if (part.lp_count == 1) {
    part.members[0].reserve(n);
    for (std::size_t i = 0; i < n; ++i) part.members[0].push_back(static_cast<NodeId>(i));
    return part;
  }

  // Farthest-point seed selection: the sink anchors LP 0, then each next
  // seed maximizes hop distance to the chosen set (lowest id breaks ties —
  // determinism).
  std::vector<NodeId> seeds{kSinkId};
  while (seeds.size() < part.lp_count) {
    const std::vector<std::uint16_t> dist = bfs_hops(topology, seeds);
    NodeId best = kInvalidNode;
    std::uint16_t best_dist = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint16_t d = dist[i];
      if (d == 0xFFFF || d == 0) continue;  // unreachable nodes handled below
      if (d > best_dist) {
        best_dist = d;
        best = static_cast<NodeId>(i);
      }
    }
    if (best == kInvalidNode) break;  // graph smaller/more disconnected than lp_count
    seeds.push_back(best);
  }

  // Round-robin frontier growth: each LP claims one unassigned neighbor
  // layer per turn, so clusters stay contiguous and comparable in size.
  std::vector<std::uint16_t> owner(n, 0xFFFF);
  std::vector<std::queue<NodeId>> frontiers(seeds.size());
  for (std::size_t lp = 0; lp < seeds.size(); ++lp) {
    owner[seeds[lp]] = static_cast<std::uint16_t>(lp);
    frontiers[lp].push(seeds[lp]);
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t lp = 0; lp < frontiers.size(); ++lp) {
      if (frontiers[lp].empty()) continue;
      const NodeId u = frontiers[lp].front();
      frontiers[lp].pop();
      progress = true;
      for (const NodeId v : topology.neighbors(u)) {
        if (owner[v] != 0xFFFF) continue;
        owner[v] = static_cast<std::uint16_t>(lp);
        frontiers[lp].push(v);
      }
    }
  }
  // Anything left (disconnected components, seed shortfall) round-robins.
  std::size_t spill = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (owner[i] == 0xFFFF) owner[i] = static_cast<std::uint16_t>(spill++ % part.lp_count);
  }

  part.lp_of = std::move(owner);
  for (std::size_t i = 0; i < n; ++i) {
    part.members[part.lp_of[i]].push_back(static_cast<NodeId>(i));
  }

  std::vector<bool> boundary(n, false);
  for (std::size_t u = 0; u < n; ++u) {
    for (const NodeId v : topology.neighbors(static_cast<NodeId>(u))) {
      if (part.lp_of[u] == part.lp_of[v]) continue;
      boundary[u] = true;
      if (u < v) ++part.cut_edges;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (boundary[i]) part.boundary_nodes.push_back(static_cast<NodeId>(i));
  }
  return part;
}

}  // namespace dophy::net::pdes
