#pragma once

// Persistent worker team for the conservative window loop.  A PDES window is
// microseconds of work per LP; a ThreadPool round-trip (mutex + condvar per
// task) per window would dominate, so the team keeps its workers parked on
// an epoch counter: run() publishes a job set, bumps the epoch, participates
// from the calling thread, and returns only after every worker has finished
// the epoch (so no stale worker can race the next window's job publication).
// Workers spin briefly on the epoch then fall back to a condvar — busy
// windows never syscall, idle stretches never burn a core.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace dophy::net::pdes {

class WorkerTeam {
 public:
  /// Job callback: `fn(ctx, job_index)`.  A plain function pointer — run()
  /// is called once per window and must not allocate.
  using JobFn = void (*)(void* ctx, std::size_t job);

  /// `threads` is the total parallelism including the calling thread, so the
  /// team spawns `threads - 1` workers.
  explicit WorkerTeam(std::size_t threads);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// Runs fn(ctx, i) for i in [0, jobs); jobs are claimed dynamically.
  /// Blocks until all jobs are done AND every worker has left the epoch.
  void run(std::size_t jobs, JobFn fn, void* ctx);

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

 private:
  void worker_loop();
  void work();

  JobFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t jobs_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};      ///< workers finished with the current epoch
  std::atomic<std::size_t> sleepers_{0};  ///< workers parked on the condvar
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::thread> workers_;
};

}  // namespace dophy::net::pdes
