#pragma once

// Spatial LP partition of the radio graph.  Greedy multi-source BFS
// clustering: seeds are chosen farthest-point-first by hop distance (the
// sink seeds LP 0), then the seeds' BFS frontiers expand round-robin so
// clusters come out contiguous and roughly balanced.  Deterministic — it
// depends only on the topology, never on thread count or timing, which is
// what makes parallel runs replayable.

#include <cstdint>
#include <vector>

#include "dophy/net/topology.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net::pdes {

struct Partition {
  std::uint32_t lp_count = 1;
  /// lp_of[node] — every node is assigned (disconnected nodes round-robin).
  std::vector<std::uint16_t> lp_of;
  /// Nodes per LP in ascending id order.
  std::vector<std::vector<NodeId>> members;
  /// Undirected topology edges whose endpoints landed in different LPs.
  std::size_t cut_edges = 0;
  /// Nodes incident to at least one cut edge, ascending — the only nodes
  /// whose liveness a remote LP ever reads (barrier-refreshed snapshot).
  std::vector<NodeId> boundary_nodes;

  [[nodiscard]] std::size_t largest_lp() const {
    std::size_t best = 0;
    for (const auto& m : members) best = m.size() > best ? m.size() : best;
    return best;
  }
};

/// Builds a `lp_count`-way partition (clamped to [1, node_count]).
[[nodiscard]] Partition build_partition(const Topology& topology, std::uint32_t lp_count);

}  // namespace dophy::net::pdes
