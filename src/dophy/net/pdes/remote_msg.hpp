#pragma once

// Cross-LP message payloads.  A RemoteMsg travels through one (src, dst)
// SpscMailbox and is converted into a typed event on the destination shard's
// queue at the barrier drain.  Both message kinds carry a delivery time at
// least one lookahead past the send time, which is what makes the
// conservative windows safe.

#include <cstdint>

#include "dophy/net/packet.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net::pdes {

struct RemoteMsg {
  enum class Kind : std::uint8_t {
    kBeacon,   ///< routing beacon heard across a cut link
    kArrival,  ///< delivered unicast data frame crossing a cut link
  };

  Kind kind = Kind::kBeacon;
  SimTime at = 0;          ///< delivery time on the destination shard
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;

  // kBeacon fields.
  std::uint16_t beacon_seq = 0;
  double advertised_etx = 0.0;

  // kArrival fields.
  std::uint32_t attempts_to_first_rx = 0;
  std::uint32_t total_attempts = 0;
  Packet packet;  ///< moved across the LP boundary (kArrival only)
};

}  // namespace dophy::net::pdes
