#pragma once

// Mutex adapters for user-facing hook interfaces when the network runs
// multi-LP.  Observer and instrumentation callbacks fire from whichever
// thread executes the involved LP; serializing them on the network's hook
// mutex keeps user code single-threaded-looking.  The wrapped state must be
// order-independent (tallies, sets) for results to stay deterministic across
// thread counts — dophy::check's GroundTruth is, by construction.

#include <mutex>

#include "dophy/net/observer.hpp"
#include "dophy/net/packet.hpp"

namespace dophy::net::pdes {

class LockedObserver final : public NetworkObserver {
 public:
  LockedObserver(std::mutex& mutex, NetworkObserver& inner) : mutex_(mutex), inner_(inner) {}

  void on_generated(const Packet& packet, SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_generated(packet, now);
  }
  void on_transmission(NodeId sender, NodeId receiver, std::uint32_t attempts,
                       std::uint32_t attempts_to_first_rx, bool delivered, bool channel_used,
                       SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_transmission(sender, receiver, attempts, attempts_to_first_rx, delivered,
                           channel_used, now);
  }
  void on_arrival(const Packet& packet, NodeId receiver, NodeId sender,
                  std::uint64_t dedupe_key, bool duplicate, SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_arrival(packet, receiver, sender, dedupe_key, duplicate, now);
  }
  void on_parent_change(NodeId node, SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_parent_change(node, now);
  }
  void on_finished(const Packet& packet, PacketFate fate, SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_finished(packet, fate, now);
  }

 private:
  std::mutex& mutex_;
  NetworkObserver& inner_;
};

class LockedInstrumentation final : public PacketInstrumentation {
 public:
  LockedInstrumentation(std::mutex& mutex, PacketInstrumentation& inner)
      : mutex_(mutex), inner_(inner) {}

  void on_origin(Packet& packet, NodeId origin, SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_origin(packet, origin, now);
  }
  void on_hop_received(Packet& packet, NodeId receiver, NodeId sender, std::uint32_t attempts,
                       SimTime now) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_hop_received(packet, receiver, sender, attempts, now);
  }

 private:
  std::mutex& mutex_;
  PacketInstrumentation& inner_;
};

}  // namespace dophy::net::pdes
