#pragma once

// CTP-style dynamic collection routing state, per node.  Each node keeps a
// neighbor table (advertised path ETX + link-quality estimate), selects the
// parent minimizing link ETX + advertised path ETX with hysteresis, and
// advertises its own resulting path ETX in beacons.  Parent changes are the
// "dynamics" the paper's tomography must survive, so the state counts them.

#include <cstdint>
#include <limits>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/net/link_estimator.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

struct RoutingConfig {
  LinkEstimatorConfig estimator;
  double switch_hysteresis = 2.0;   ///< new parent must beat current by this
  double beacon_interval_s = 10.0;  ///< mean beacon period
  double beacon_jitter = 0.25;      ///< uniform ± fraction of the interval
  double neighbor_timeout_s = 60.0; ///< drop neighbors silent for this long
  /// EWMA weight on history for the *advertised* path ETX.  Smoothing what
  /// we advertise damps estimate noise multiplicatively per hop, which is
  /// what keeps deep networks from flapping between near-equal parents.
  double advertise_alpha = 0.7;
  /// Per-packet opportunistic forwarding: with this probability a data
  /// packet goes to a feasible alternate forwarder instead of the primary
  /// parent (0 = classic single-parent CTP).  Models protocols where each
  /// node *dynamically selects the forwarding node* per packet.
  double opportunistic_fraction = 0.0;
};

inline constexpr double kInfiniteEtx = std::numeric_limits<double>::infinity();

class RoutingState {
 public:
  RoutingState(NodeId self, bool is_sink, const RoutingConfig& config);

  /// Handles a received beacon from `from` advertising `path_etx`.
  void on_beacon(NodeId from, double path_etx, std::uint16_t beacon_seq, SimTime now);

  /// Handles the outcome of a unicast data exchange toward `to`.
  void on_data_tx(NodeId to, std::uint32_t total_attempts, bool delivered);

  /// Re-evaluates the parent choice; returns true if the parent changed.
  bool select_parent(SimTime now);

  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  [[nodiscard]] bool has_route() const noexcept {
    return is_sink_ || parent_ != kInvalidNode;
  }

  /// Chooses the next-hop forwarder for one data packet: the parent, or —
  /// with RoutingConfig::opportunistic_fraction probability — a uniformly
  /// drawn feasible alternate (gradient-rule candidates excluding the
  /// parent).  Falls back to the parent when no alternate exists.
  [[nodiscard]] NodeId select_forwarder(dophy::common::Rng& rng) const;

  /// Own instantaneous path ETX (0 for the sink, +inf when routeless).
  [[nodiscard]] double path_etx() const noexcept { return path_etx_; }

  /// Smoothed path ETX for beacons; call exactly once per beacon broadcast
  /// (it advances the EWMA).
  [[nodiscard]] double advertise_etx();

  /// Current link-ETX estimate toward `neighbor` (initial prior if unknown).
  [[nodiscard]] double link_etx(NodeId neighbor) const;

  [[nodiscard]] std::uint64_t parent_changes() const noexcept { return parent_changes_; }

  /// Neighbors currently in the table (for diagnostics/tests).
  [[nodiscard]] std::vector<NodeId> known_neighbors() const;

  /// The advertised path ETX last heard from `neighbor` (+inf if none).
  [[nodiscard]] double neighbor_path_etx(NodeId neighbor) const;

 private:
  struct NeighborEntry {
    LinkQualityEstimate quality;
    double advertised_path_etx = kInfiniteEtx;
    SimTime last_heard = 0;
    NodeId id = kInvalidNode;
    NeighborEntry(NodeId node, const LinkEstimatorConfig& cfg)
        : quality(cfg), id(node) {}
  };

  NeighborEntry& entry(NodeId neighbor);
  [[nodiscard]] NeighborEntry* find(NodeId neighbor) noexcept;
  [[nodiscard]] const NeighborEntry* find(NodeId neighbor) const noexcept;
  void refresh_path_etx();
  void expire_stale(SimTime now);

  NodeId self_;
  bool is_sink_;
  RoutingConfig config_;
  /// Flat neighbor table: radio degree is small (< 20), so a linear scan
  /// beats hashing — and every consumer already tie-breaks on id, so the
  /// result never depends on storage order.
  std::vector<NeighborEntry> table_;
  NodeId parent_ = kInvalidNode;
  double path_etx_;
  double advertised_etx_ = kInfiniteEtx;
  std::uint64_t parent_changes_ = 0;
};

}  // namespace dophy::net
