#pragma once

// Node placement and connectivity graph.  Supports uniform-random placement
// in a square field (the paper's large-scale simulation setting) and a
// regular grid, with the sink at the field corner or center.  Generation
// retries until the communication graph is connected so every node has a
// route to the sink.

#include <cstdint>
#include <span>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

enum class Layout { kRandom, kGrid };
enum class SinkPlacement { kCorner, kCenter };

struct TopologyConfig {
  std::size_t node_count = 100;   ///< includes the sink
  double field_size = 200.0;      ///< square side, meters
  double comm_range = 40.0;       ///< maximum link distance, meters
  Layout layout = Layout::kRandom;
  SinkPlacement sink_placement = SinkPlacement::kCorner;
  std::uint32_t max_generation_attempts = 64;
};

class Topology {
 public:
  /// Generates a connected topology; throws std::runtime_error if
  /// max_generation_attempts placements all come out disconnected.
  static Topology generate(const TopologyConfig& config, dophy::common::Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept { return positions_.size(); }
  [[nodiscard]] const Vec2& position(NodeId id) const { return positions_.at(id); }
  [[nodiscard]] double comm_range() const noexcept { return config_.comm_range; }
  [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }

  /// Nodes within communication range of `id` (excluding `id`).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const;

  [[nodiscard]] double distance(NodeId a, NodeId b) const;

  [[nodiscard]] bool are_neighbors(NodeId a, NodeId b) const;

  /// True if every node can reach the sink over neighbor edges.
  [[nodiscard]] bool is_connected() const;

  /// Hop distance (BFS) from each node to the sink; kInvalidHops when
  /// unreachable.
  static constexpr std::uint16_t kInvalidHops = 0xFFFF;
  [[nodiscard]] std::vector<std::uint16_t> hops_to_sink() const;

  /// All directed neighbor pairs (u, v), u != v — the simulator instantiates
  /// one Link per entry.
  [[nodiscard]] std::vector<LinkKey> directed_links() const;

 private:
  Topology() = default;
  void build_adjacency();

  TopologyConfig config_;
  std::vector<Vec2> positions_;
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace dophy::net
