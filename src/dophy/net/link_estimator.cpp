#include "dophy/net/link_estimator.hpp"

#include <algorithm>

namespace dophy::net {

void LinkQualityEstimate::on_data_tx(std::uint32_t total_attempts, bool delivered) noexcept {
  // A failed exchange is at least as bad as needing every attempt; charge a
  // pessimistic 2x so dead links decay fast.
  const double sample = delivered ? static_cast<double>(total_attempts)
                                  : 2.0 * static_cast<double>(total_attempts);
  if (data_samples_ == 0) {
    data_etx_ = sample;
  } else {
    data_etx_ = config_->data_alpha * data_etx_ + (1.0 - config_->data_alpha) * sample;
  }
  ++data_samples_;
  data_etx_ = std::min(data_etx_, config_->max_etx);
  etx_dirty_ = true;
}

void LinkQualityEstimate::on_beacon(std::uint16_t seq) noexcept {
  etx_dirty_ = true;
  if (!have_beacon_) {
    have_beacon_ = true;
    last_beacon_seq_ = seq;
    beacon_prr_ = 1.0;
    return;
  }
  // Sequence numbers are uint16 and wrap; treat backward jumps as restart.
  const std::uint16_t gap = static_cast<std::uint16_t>(seq - last_beacon_seq_);
  last_beacon_seq_ = seq;
  if (gap == 0 || gap > 100) {
    beacon_prr_ = 1.0;  // duplicate or restart: reset optimistically
    return;
  }
  // gap-1 missed beacons followed by one received.
  for (std::uint16_t i = 1; i < gap; ++i) {
    beacon_prr_ = config_->beacon_alpha * beacon_prr_;
  }
  beacon_prr_ = config_->beacon_alpha * beacon_prr_ + (1.0 - config_->beacon_alpha);
}

double LinkQualityEstimate::compute_etx() const noexcept {
  if (data_samples_ >= config_->min_data_samples) return data_etx_;
  if (beacon_prr_ > 0.0) {
    // Beacon PRR measures the inbound direction; use it as a symmetric
    // proxy, blended with the optimistic prior while data is scarce.
    const double beacon_etx = std::min(1.0 / std::max(beacon_prr_, 1.0 / config_->max_etx),
                                       config_->max_etx);
    if (data_samples_ > 0) return 0.5 * data_etx_ + 0.5 * beacon_etx;
    return beacon_etx;
  }
  return data_samples_ > 0 ? data_etx_ : config_->initial_etx;
}

}  // namespace dophy::net
