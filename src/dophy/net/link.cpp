#include "dophy/net/link.hpp"

#include <stdexcept>

namespace dophy::net {

Link::Link(LinkKey key, std::unique_ptr<LossProcess> loss, dophy::common::Rng rng)
    : key_(key), loss_(std::move(loss)), rng_(rng) {}

bool Link::attempt_data(SimTime now) {
  ++data_attempts_;
  if (blackout_) {
    ++data_losses_;
    ++blackout_losses_;
    return false;
  }
  const bool lost = loss_->attempt_lost(now, rng_);
  if (lost) ++data_losses_;
  return !lost;
}

bool Link::attempt_control(SimTime now) {
  ++control_attempts_;
  if (blackout_) {
    ++control_losses_;
    ++blackout_losses_;
    return false;
  }
  const bool lost = loss_->attempt_lost(now, rng_);
  if (lost) ++control_losses_;
  return !lost;
}

void Link::replace_loss_process(std::unique_ptr<LossProcess> process) {
  if (!process) throw std::invalid_argument("Link::replace_loss_process: null process");
  loss_ = std::move(process);
}

double Link::empirical_loss(SimTime now) const noexcept {
  if (data_attempts_ == 0) return loss_->nominal_loss(now);
  return static_cast<double>(data_losses_) / static_cast<double>(data_attempts_);
}

double Link::empirical_loss_since(const Snapshot& start, SimTime now) const noexcept {
  const std::uint64_t attempts = data_attempts_ - start.attempts;
  if (attempts == 0) return loss_->nominal_loss(now);
  return static_cast<double>(data_losses_ - start.losses) / static_cast<double>(attempts);
}

}  // namespace dophy::net
