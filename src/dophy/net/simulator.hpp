#pragma once

// Simulation clock + event loop.  Owns the queue; everything in dophy::net
// schedules through this.

#include <cstdint>

#include "dophy/net/event_queue.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules at absolute simulation time (must be >= now).
  void schedule_at(SimTime at, EventQueue::Callback cb);

  /// Schedules `delay` microseconds from now (delay >= 0).
  void schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(SimTime until);

  /// Runs until the queue drains.
  void run_all();

  /// Executes the single next event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Wall-clock seconds spent inside run_until dispatch loops (event-loop
  /// profiling; step()/run_all() are not accounted).
  [[nodiscard]] double busy_seconds() const noexcept { return busy_seconds_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace dophy::net
