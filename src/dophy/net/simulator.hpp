#pragma once

// Simulation clock + event loop.  Owns the queue; everything in dophy::net
// schedules through this.  Typed events (schedule_event_*) dispatch through
// their static thunk with zero allocations; std::function callbacks remain
// as a slab-backed escape hatch for cold call sites.

#include <cstdint>
#include <stdexcept>

#include "dophy/net/event.hpp"
#include "dophy/net/event_queue.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules a typed event at absolute simulation time (must be >= now).
  /// Inline along with the `in` variant: one of these runs for every event
  /// the simulation ever executes.
  void schedule_event_at(SimTime at, const Event& ev) {
    if (at < now_) throw std::invalid_argument("Simulator::schedule_event_at: time in the past");
    queue_.push_event(at, ev);
  }

  /// Schedules a typed event `delay` microseconds from now (delay >= 0).
  void schedule_event_in(SimTime delay, const Event& ev) {
    if (delay < 0) throw std::invalid_argument("Simulator::schedule_event_in: negative delay");
    queue_.push_event(now_ + delay, ev);
  }

  /// Escape hatch: schedules a callback at absolute time (must be >= now).
  void schedule_at(SimTime at, EventQueue::Callback cb);

  /// Escape hatch: schedules a callback `delay` microseconds from now.
  void schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  void run_until(SimTime until);

  /// Runs until the queue drains.
  void run_all();

  /// Executes the single next event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::uint64_t executed_count() const noexcept { return executed_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Wall-clock seconds spent inside run_until dispatch loops (event-loop
  /// profiling; step()/run_all() are not accounted).
  [[nodiscard]] double busy_seconds() const noexcept { return busy_seconds_; }

  /// Observer invoked before every dispatched event with its total-order key
  /// and kind (determinism tests, replay debugging).  Pass nullptr to
  /// disable; costs one predictable branch per event when unset.
  using TraceHook = void (*)(void* ctx, SimTime time, std::uint64_t seq, EventKind kind);
  void set_trace_hook(TraceHook hook, void* ctx) noexcept {
    trace_hook_ = hook;
    trace_ctx_ = ctx;
  }

 private:
  void dispatch(const EventQueue::Scheduled& entry);

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  double busy_seconds_ = 0.0;
  TraceHook trace_hook_ = nullptr;
  void* trace_ctx_ = nullptr;
};

}  // namespace dophy::net
