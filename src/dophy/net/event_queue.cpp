#include "dophy/net/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace dophy::net {

std::uint32_t EventQueue::acquire_callback_slot(Callback&& cb) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    callback_slab_[slot] = std::move(cb);
    return slot;
  }
  callback_slab_.push_back(std::move(cb));
  return static_cast<std::uint32_t>(callback_slab_.size() - 1);
}

void EventQueue::push(SimTime at, Callback cb) {
  Event ev;
  ev.kind = EventKind::kCallback;
  ev.payload.callback.slot = acquire_callback_slot(std::move(cb));
  push_entry(at, ev);
}

EventQueue::Scheduled EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek: empty queue");
  const HeapEntry& top = heap_.front();
  return Scheduled{top.time, top.seq, event_slab_[top.slot]};
}

void EventQueue::run_callback(const Event& ev) {
  const std::uint32_t slot = ev.payload.callback.slot;
  // Move the callable out before invoking: the callback may push new events
  // and recycle this very slot.
  Callback cb = std::move(callback_slab_[slot]);
  callback_slab_[slot] = nullptr;
  free_slots_.push_back(slot);
  cb();
}

void EventQueue::clear() noexcept {
  heap_.clear();
  event_slab_.clear();
  event_free_.clear();
  callback_slab_.clear();
  free_slots_.clear();
  next_seq_ = 0;
}

void EventQueue::shrink_to_fit() {
  heap_.shrink_to_fit();
  event_slab_.shrink_to_fit();
  event_free_.shrink_to_fit();
  callback_slab_.shrink_to_fit();
  free_slots_.shrink_to_fit();
}

}  // namespace dophy::net
