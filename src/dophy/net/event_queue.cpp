#include "dophy/net/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace dophy::net {

void EventQueue::push(SimTime at, Callback cb) {
  heap_.push_back(Entry{at, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

SimTime EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty queue");
  return heap_.front().time;
}

EventQueue::Callback EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Callback cb = std::move(heap_.back().cb);
  heap_.pop_back();
  return cb;
}

void EventQueue::clear() noexcept { heap_.clear(); }

}  // namespace dophy::net
