#pragma once

// Full network assembly: topology + links + nodes + routing + traffic, driven
// by the discrete-event simulator.  This is the "large-scale simulation"
// substrate the paper evaluates on (TOSSIM in the original; rebuilt here).
//
// Execution modes (NetworkConfig::pdes):
//   * lp_count == 1 (default): the legacy serial engine, bit-identical to
//     the single-queue simulator the golden hashes pin.
//   * lp_count > 1: conservative parallel DES.  The topology is partitioned
//     into logical processes (pdes::build_partition); each LP owns a private
//     Simulator/EventQueue plus its nodes' mutable state, cut-link traffic
//     crosses through bounded SPSC mailboxes, and all LPs advance in
//     barrier-synchronized windows bounded by the MAC-derived lookahead.
//     Results are deterministic in lp_count but independent of `threads`.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/net/event.hpp"
#include "dophy/net/link.hpp"
#include "dophy/net/mac.hpp"
#include "dophy/net/node.hpp"
#include "dophy/net/observer.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/net/pdes/partition.hpp"
#include "dophy/net/pdes/remote_msg.hpp"
#include "dophy/net/pdes/spsc_mailbox.hpp"
#include "dophy/net/simulator.hpp"
#include "dophy/net/topology.hpp"
#include "dophy/net/trace.hpp"

namespace dophy::net::pdes {
class WorkerTeam;
class LockedObserver;
class LockedInstrumentation;
}  // namespace dophy::net::pdes

namespace dophy::net {

/// How per-link loss processes are instantiated.  All kinds derive each
/// link's *base* loss level from the distance-PRR curve (so links are
/// heterogeneous, which is what makes tomography interesting) and then wrap
/// it in the chosen temporal process.
struct LossConfig {
  enum class Kind { kBernoulli, kGilbertElliott, kDrifting };
  Kind kind = Kind::kBernoulli;

  double noise_spread = 0.08;   ///< per-link perturbation of the curve
  double reverse_noise = 0.05;  ///< reverse loss = forward base ± this
  double loss_scale = 1.0;      ///< multiplies every link's base loss level

  // Gilbert-Elliott shaping (kind == kGilbertElliott).
  double ge_bad_multiplier = 4.0;
  double ge_mean_good_s = 120.0;
  double ge_mean_bad_s = 20.0;

  // Drift shaping (kind == kDrifting).
  double drift_amplitude = 0.05;
  double drift_period_s = 600.0;
  double drift_shuffle_interval_s = 0.0;  ///< 0 disables re-randomization
  double drift_shuffle_spread = 0.0;
};

/// Optional node failure/recovery process: a fraction of non-sink nodes
/// alternate between up (exponential mean_up_s) and down (mean_down_s)
/// states.  A down node neither beacons, generates, forwards, nor receives —
/// transmissions toward it burn the full ARQ budget.
struct ChurnConfig {
  bool enabled = false;
  double churn_fraction = 0.2;  ///< fraction of non-sink nodes that churn
  double mean_up_s = 600.0;
  double mean_down_s = 60.0;
};

struct TrafficConfig {
  double data_interval_s = 10.0;  ///< mean per-node generation period
  double jitter = 0.2;            ///< uniform ± fraction of the period
  double start_delay_s = 30.0;    ///< warm-up before sources start
  std::size_t queue_capacity = 64;
  std::uint16_t max_hops = 32;    ///< datapath TTL (routing-loop guard)
};

/// Parallel-engine knobs.  The defaults select the serial engine.
struct PdesConfig {
  /// Logical processes the topology is partitioned into.  1 = the legacy
  /// serial engine (bit-identical to pre-PDES builds).  Results depend on
  /// lp_count (cut-link semantics) but NOT on `threads`.
  std::size_t lp_count = 1;
  /// OS threads executing LPs (clamped to [1, lp_count]; 0 = min(lp_count,
  /// hardware_concurrency)).  Any value yields identical results; callers
  /// own the oversubscription policy (see dophy_bench --sim-threads).
  std::size_t threads = 0;
  /// SPSC ring slots per LP pair (power of two); bursts beyond this spill
  /// to a mutex-guarded overflow without loss or reordering.
  std::size_t mailbox_capacity = 256;
};

struct NetworkConfig {
  TopologyConfig topology;
  MacConfig mac;
  RoutingConfig routing;
  LossConfig loss;
  TrafficConfig traffic;
  ChurnConfig churn;
  PdesConfig pdes;
  std::uint64_t seed = 1;
  bool collect_outcomes = true;  ///< keep full per-packet outcomes in memory
};

struct NetworkStats {
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t dropped_retries = 0;
  std::uint64_t dropped_noroute = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t data_tx_attempts = 0;   ///< sum over links, data frames
  std::uint64_t data_rx_frames = 0;     ///< data frames that arrived (attempts - losses)
  std::uint64_t control_rx_frames = 0;  ///< beacon/ack frames that arrived
  std::uint64_t beacons_sent = 0;
  std::uint64_t parent_changes = 0;
  std::uint64_t node_failures = 0;        ///< churn down-transitions
  std::uint64_t control_flood_bytes = 0;  ///< dissemination byte-cost
  std::uint64_t measurement_air_bytes = 0;  ///< blob bytes carried over the air
  [[nodiscard]] double delivery_ratio() const noexcept {
    return packets_generated == 0
               ? 1.0
               : static_cast<double>(packets_delivered) /
                     static_cast<double>(packets_generated);
  }
};

class Network {
 public:
  /// Builds the network.  `instrumentation` may be null (no measurement
  /// layer); it must outlive the Network.
  explicit Network(const NetworkConfig& config,
                   PacketInstrumentation* instrumentation = nullptr);
  ~Network();

  /// Advances simulation time by `seconds`.
  void run_for(double seconds);
  void run_until(SimTime t);

  /// LP 0's simulator (in serial mode: the one simulator everything runs
  /// on).  Scheduling through it from outside is only safe in serial mode
  /// or while the network is quiescent (between run_* calls).
  [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  /// Directed link accessors; `link` throws on absent edges.
  [[nodiscard]] Link& link(NodeId from, NodeId to);
  [[nodiscard]] const Link* find_link(NodeId from, NodeId to) const noexcept;
  [[nodiscard]] std::vector<LinkKey> link_keys() const;

  /// Packet outcome traces.  Serial mode: the live collector.  Multi-LP:
  /// a deterministic merge of the per-LP collectors (LP-ascending order,
  /// so the result is independent of thread count), rebuilt per call —
  /// query it while quiescent.
  [[nodiscard]] TraceCollector& traces();

  /// Extra hook invoked on every sink delivery (after instrumentation).
  using DeliveryHandler = std::function<void(const Packet&, SimTime)>;
  void set_delivery_handler(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }

  /// Fault-injection hook: runs at the sink after instrumentation finalizes
  /// the measurement blob and before the delivery handler sees the packet,
  /// so it can corrupt/truncate/strip the report the decoder will read.
  using ReportMutator = std::function<void(Packet&, SimTime)>;
  void set_report_mutator(ReportMutator mutator) { report_mutator_ = std::move(mutator); }

  /// Forces a node up or down (fault injection; also the churn primitive).
  /// Going down drops the node's queued packets; coming back up announces
  /// itself with a triggered beacon.  No-op when already in that state.
  /// Multi-LP: only valid while quiescent (fault injection is serial-only).
  void set_node_alive(NodeId id, bool alive);

  /// Sets a node's clock-rate factor (fault injection; see Node).
  void set_clock_factor(NodeId id, double factor) { node(id).set_clock_factor(factor); }

  /// Installs a passive observer (dophy::check's ground-truth oracle).  May
  /// be null (the default); must outlive the Network while installed.  Each
  /// hook site costs one null-check branch when unset.  In multi-LP mode the
  /// observer is transparently serialized behind the network's hook mutex.
  void set_observer(NetworkObserver* observer);

  /// Packets currently parked between MAC completion scheduling and their
  /// kTxDone event (conservation accounting for dophy::check).
  [[nodiscard]] std::size_t inflight_count() const noexcept;

  /// Periodic hook (e.g. tomography epoch boundaries).  Runs every
  /// `interval_s` simulated seconds starting one interval from now.  Serial:
  /// re-armed through a typed kPeriodic event.  Multi-LP: runs at the window
  /// barrier covering its due time, when every LP is quiescent — so the hook
  /// may safely read any node or link.
  void add_periodic(double interval_s, std::function<void(SimTime)> fn);

  /// One-shot barrier-safe callback `delay` microseconds from now.  Serial:
  /// identical to sim().schedule_in.  Multi-LP: runs at the window barrier
  /// covering its due time (all LPs quiescent — global reads are safe).
  void schedule_global_in(SimTime delay, std::function<void()> fn);

  /// Control-plane flood from the sink: delivers an install callback to
  /// every other node with per-depth latency and accounts the byte cost
  /// (every node rebroadcasts the payload once).  Multi-LP: call while
  /// quiescent (a barrier hook or between run_* calls).
  void flood_from_sink(std::size_t payload_bytes,
                       const std::function<void(NodeId, SimTime)>& install);

  /// Aggregate statistics (computed on demand; multi-LP: while quiescent).
  [[nodiscard]] NetworkStats stats() const;

  /// Schedules a near-immediate beacon for `id` (route-change/Trickle
  /// reset); coalesced while one is already pending.  Multi-LP: only valid
  /// while quiescent (Trickle is serial-only).
  void trigger_beacon(NodeId id);

  // --- PDES introspection -------------------------------------------------

  [[nodiscard]] std::size_t lp_count() const noexcept { return shards_.size(); }
  [[nodiscard]] const pdes::Partition& partition() const noexcept { return partition_; }
  /// Events executed across every LP (== sim().executed_count() when serial).
  [[nodiscard]] std::uint64_t executed_events() const noexcept;
  /// Conservative lookahead in microseconds (MAC-derived).
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  /// Barrier windows completed so far (0 in serial mode).
  [[nodiscard]] std::uint64_t window_count() const noexcept { return windows_; }
  /// Cross-LP messages delivered so far (0 in serial mode).
  [[nodiscard]] std::uint64_t remote_message_count() const noexcept { return remote_msgs_; }

 private:
  /// One directed radio edge as seen from its sender, resolved once at
  /// construction so the data/control hot paths never hash into links_.
  struct NeighborLink {
    NodeId peer = kInvalidNode;
    bool cut = false;         ///< peer lives in a different LP
    Link* forward = nullptr;  ///< this node -> peer
    Link* reverse = nullptr;  ///< peer -> this node (acks); null if absent
    /// Cut edges only: sender-LP-owned clone of `reverse` the ARQ samples
    /// ACK losses on (the real reverse link belongs to the peer's LP).
    Link* ack_shadow = nullptr;
  };

  /// A unicast exchange parked between MAC completion scheduling and its
  /// kTxDone event; slots are free-listed so steady-state transmissions
  /// recycle Packet buffers instead of allocating per hop.
  struct InFlightTx {
    Packet packet;
    TxOutcome outcome;
    NodeId parent = kInvalidNode;
    /// Multi-LP: the packet already crossed a cut link via mailbox; the
    /// kTxDone event only releases the radio and emits the hop span.
    bool remote = false;
    std::uint64_t span = 0;  ///< packet's span id saved across the handoff
  };

  /// A cross-LP data frame parked between the mailbox drain and its
  /// kRemoteArrival event on the destination shard.
  struct RemoteArrival {
    Packet packet;
    NodeId sender = kInvalidNode;
    NodeId receiver = kInvalidNode;
    std::uint32_t attempts = 0;
    std::uint32_t total_attempts = 0;
  };

  /// One logical process: a private simulator plus every piece of formerly
  /// network-global mutable run state, sharded so LPs never write shared
  /// memory inside a window.
  struct Shard {
    Network* net = nullptr;
    std::uint32_t lp = 0;
    Simulator sim;
    TraceCollector traces;
    std::vector<InFlightTx> inflight;
    std::vector<std::uint32_t> inflight_free;
    std::vector<Packet> packet_pool;
    std::vector<RemoteArrival> arrivals;
    std::vector<std::uint32_t> arrival_free;

    std::uint64_t beacons_sent = 0;
    std::uint64_t node_failures = 0;
    std::uint64_t dropped_retries = 0;
    std::uint64_t dropped_noroute = 0;
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t packets_generated = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t control_flood_bytes = 0;
    std::uint64_t measurement_air_bytes = 0;
  };

  /// Barrier-executed hook (multi-LP periodic/one-shot scheduling).
  struct BarrierHook {
    std::function<void(SimTime)> fn;
    SimTime interval = 0;  ///< 0 = one-shot
    SimTime due = 0;
  };

  struct PeriodicHook {
    std::function<void(SimTime)> fn;
    SimTime interval = 0;
  };

  static void event_trampoline(void* target, const Event& ev);
  void on_event(Shard& sh, const Event& ev);
  /// The one re-arm helper behind every recurring per-node activity
  /// (beacons, generation, churn, triggered beacons).  Self-scheduling:
  /// the owner shard is always the one executing.
  void schedule_node_event(Shard& sh, EventKind kind, NodeId id, SimTime delay);

  void build_links(dophy::common::Rng& rng);
  void build_adjacency();
  void build_shards();
  [[nodiscard]] const NeighborLink& neighbor_link(NodeId from, NodeId to) const;
  [[nodiscard]] std::unique_ptr<LossProcess> make_loss_process(double base,
                                                               dophy::common::Rng& rng) const;
  void schedule_beacon(Shard& sh, NodeId id, bool initial);
  void send_beacon(Shard& sh, NodeId id);
  void broadcast_beacon(Shard& sh, NodeId id);
  void trigger_beacon(Shard& sh, NodeId id);
  void schedule_generation(Shard& sh, NodeId id, bool initial);
  void generate_packet(Shard& sh, NodeId id);
  void schedule_churn_transition(Shard& sh, NodeId id);
  void set_node_alive(Shard& sh, NodeId id, bool alive);
  void try_send(Shard& sh, NodeId id);
  void complete_transmission(Shard& sh, NodeId sender, std::uint32_t slot);
  void run_periodic(Shard& sh, std::uint32_t index);
  void handle_arrival(Shard& sh, NodeId receiver, NodeId sender, Packet packet,
                      std::uint32_t attempts, std::uint32_t total_attempts);
  void on_remote_beacon(Shard& sh, const Event& ev);
  void on_remote_arrival(Shard& sh, std::uint32_t slot);
  void finish_packet(Shard& sh, Packet&& packet, PacketFate fate);
  void note_queue_overflow(Shard& sh, NodeId id);

  [[nodiscard]] std::uint32_t acquire_inflight(Shard& sh);
  [[nodiscard]] Packet acquire_packet(Shard& sh);
  void recycle_packet(Shard& sh, Packet&& packet);

  [[nodiscard]] bool multi_lp() const noexcept { return shards_.size() > 1; }
  [[nodiscard]] Shard& shard_of(NodeId id) noexcept { return *shards_[lp_of_[id]]; }
  [[nodiscard]] pdes::SpscMailbox<pdes::RemoteMsg>& outbox(std::uint32_t src,
                                                           std::uint32_t dst) noexcept {
    return *mailboxes_[src * shards_.size() + dst];
  }
  /// Quiescent-time "now": every shard clock agrees on it at a barrier or
  /// between run_* calls.
  [[nodiscard]] SimTime global_now() const noexcept { return sim_->now(); }

  void run_windows(SimTime until);
  void drain_mailboxes(SimTime window_end);
  void refresh_alive_snapshot();
  void run_due_hooks(SimTime now);

  NetworkConfig config_;
  PacketInstrumentation* instrumentation_;
  NetworkObserver* observer_ = nullptr;
  Topology topology_;
  ArqMac mac_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<LinkKey, std::unique_ptr<Link>, LinkKeyHash> links_;
  /// Base loss level per directed link (records build_links' curve draws so
  /// cut-edge ACK shadows can clone a distributionally-identical process).
  std::unordered_map<LinkKey, double, LinkKeyHash> base_loss_;
  /// Per-node resolved neighbor links in topology-neighbor order.
  std::vector<std::vector<NeighborLink>> adjacency_;
  DeliveryHandler delivery_handler_;
  ReportMutator report_mutator_;
  std::vector<std::uint16_t> hops_to_sink_;
  std::vector<PeriodicHook> periodic_hooks_;

  // --- PDES state ---------------------------------------------------------
  pdes::Partition partition_;
  std::vector<std::uint16_t> lp_of_;  ///< node -> LP (all zero when serial)
  std::vector<std::unique_ptr<Shard>> shards_;
  Simulator* sim_ = nullptr;  ///< shards_[0]->sim (the serial-mode simulator)
  std::vector<std::unique_ptr<pdes::SpscMailbox<pdes::RemoteMsg>>> mailboxes_;
  std::vector<std::unique_ptr<Link>> shadow_links_;
  std::vector<std::uint8_t> alive_snapshot_;  ///< barrier-refreshed liveness
  std::vector<BarrierHook> barrier_hooks_;
  std::vector<pdes::RemoteMsg> drain_scratch_;
  std::unique_ptr<pdes::WorkerTeam> team_;
  std::unique_ptr<pdes::LockedObserver> locked_observer_;
  std::unique_ptr<pdes::LockedInstrumentation> locked_instrumentation_;
  std::mutex hook_mutex_;  ///< serializes user hooks across LP threads
  std::unique_ptr<TraceCollector> merged_traces_;  ///< multi-LP traces() result
  SimTime lookahead_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t remote_msgs_ = 0;
  std::size_t thread_budget_ = 1;
};

}  // namespace dophy::net
