#pragma once

// Full network assembly: topology + links + nodes + routing + traffic, driven
// by the discrete-event simulator.  This is the "large-scale simulation"
// substrate the paper evaluates on (TOSSIM in the original; rebuilt here).

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/net/event.hpp"
#include "dophy/net/link.hpp"
#include "dophy/net/mac.hpp"
#include "dophy/net/node.hpp"
#include "dophy/net/observer.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/net/simulator.hpp"
#include "dophy/net/topology.hpp"
#include "dophy/net/trace.hpp"

namespace dophy::net {

/// How per-link loss processes are instantiated.  All kinds derive each
/// link's *base* loss level from the distance-PRR curve (so links are
/// heterogeneous, which is what makes tomography interesting) and then wrap
/// it in the chosen temporal process.
struct LossConfig {
  enum class Kind { kBernoulli, kGilbertElliott, kDrifting };
  Kind kind = Kind::kBernoulli;

  double noise_spread = 0.08;   ///< per-link perturbation of the curve
  double reverse_noise = 0.05;  ///< reverse loss = forward base ± this
  double loss_scale = 1.0;      ///< multiplies every link's base loss level

  // Gilbert-Elliott shaping (kind == kGilbertElliott).
  double ge_bad_multiplier = 4.0;
  double ge_mean_good_s = 120.0;
  double ge_mean_bad_s = 20.0;

  // Drift shaping (kind == kDrifting).
  double drift_amplitude = 0.05;
  double drift_period_s = 600.0;
  double drift_shuffle_interval_s = 0.0;  ///< 0 disables re-randomization
  double drift_shuffle_spread = 0.0;
};

/// Optional node failure/recovery process: a fraction of non-sink nodes
/// alternate between up (exponential mean_up_s) and down (mean_down_s)
/// states.  A down node neither beacons, generates, forwards, nor receives —
/// transmissions toward it burn the full ARQ budget.
struct ChurnConfig {
  bool enabled = false;
  double churn_fraction = 0.2;  ///< fraction of non-sink nodes that churn
  double mean_up_s = 600.0;
  double mean_down_s = 60.0;
};

struct TrafficConfig {
  double data_interval_s = 10.0;  ///< mean per-node generation period
  double jitter = 0.2;            ///< uniform ± fraction of the period
  double start_delay_s = 30.0;    ///< warm-up before sources start
  std::size_t queue_capacity = 64;
  std::uint16_t max_hops = 32;    ///< datapath TTL (routing-loop guard)
};

struct NetworkConfig {
  TopologyConfig topology;
  MacConfig mac;
  RoutingConfig routing;
  LossConfig loss;
  TrafficConfig traffic;
  ChurnConfig churn;
  std::uint64_t seed = 1;
  bool collect_outcomes = true;  ///< keep full per-packet outcomes in memory
};

struct NetworkStats {
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t dropped_retries = 0;
  std::uint64_t dropped_noroute = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t data_tx_attempts = 0;   ///< sum over links, data frames
  std::uint64_t data_rx_frames = 0;     ///< data frames that arrived (attempts - losses)
  std::uint64_t control_rx_frames = 0;  ///< beacon/ack frames that arrived
  std::uint64_t beacons_sent = 0;
  std::uint64_t parent_changes = 0;
  std::uint64_t node_failures = 0;        ///< churn down-transitions
  std::uint64_t control_flood_bytes = 0;  ///< dissemination byte-cost
  std::uint64_t measurement_air_bytes = 0;  ///< blob bytes carried over the air
  [[nodiscard]] double delivery_ratio() const noexcept {
    return packets_generated == 0
               ? 1.0
               : static_cast<double>(packets_delivered) /
                     static_cast<double>(packets_generated);
  }
};

class Network {
 public:
  /// Builds the network.  `instrumentation` may be null (no measurement
  /// layer); it must outlive the Network.
  explicit Network(const NetworkConfig& config,
                   PacketInstrumentation* instrumentation = nullptr);

  /// Advances simulation time by `seconds`.
  void run_for(double seconds);
  void run_until(SimTime t);

  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;

  /// Directed link accessors; `link` throws on absent edges.
  [[nodiscard]] Link& link(NodeId from, NodeId to);
  [[nodiscard]] const Link* find_link(NodeId from, NodeId to) const noexcept;
  [[nodiscard]] std::vector<LinkKey> link_keys() const;

  [[nodiscard]] TraceCollector& traces() noexcept { return traces_; }

  /// Extra hook invoked on every sink delivery (after instrumentation).
  using DeliveryHandler = std::function<void(const Packet&, SimTime)>;
  void set_delivery_handler(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }

  /// Fault-injection hook: runs at the sink after instrumentation finalizes
  /// the measurement blob and before the delivery handler sees the packet,
  /// so it can corrupt/truncate/strip the report the decoder will read.
  using ReportMutator = std::function<void(Packet&, SimTime)>;
  void set_report_mutator(ReportMutator mutator) { report_mutator_ = std::move(mutator); }

  /// Forces a node up or down (fault injection; also the churn primitive).
  /// Going down drops the node's queued packets; coming back up announces
  /// itself with a triggered beacon.  No-op when already in that state.
  void set_node_alive(NodeId id, bool alive);

  /// Sets a node's clock-rate factor (fault injection; see Node).
  void set_clock_factor(NodeId id, double factor) { node(id).set_clock_factor(factor); }

  /// Installs a passive observer (dophy::check's ground-truth oracle).  May
  /// be null (the default); must outlive the Network while installed.  Each
  /// hook site costs one null-check branch when unset.
  void set_observer(NetworkObserver* observer) noexcept { observer_ = observer; }

  /// Packets currently parked between MAC completion scheduling and their
  /// kTxDone event (conservation accounting for dophy::check).
  [[nodiscard]] std::size_t inflight_count() const noexcept {
    return inflight_.size() - inflight_free_.size();
  }

  /// Periodic hook (e.g. tomography epoch boundaries).  Runs every
  /// `interval_s` simulated seconds starting one interval from now.  The
  /// hook is stored once and re-armed through a typed kPeriodic event — no
  /// per-cycle closure materialization.
  void add_periodic(double interval_s, std::function<void(SimTime)> fn);

  /// Control-plane flood from the sink: delivers an install callback to
  /// every other node with per-depth latency and accounts the byte cost
  /// (every node rebroadcasts the payload once).
  void flood_from_sink(std::size_t payload_bytes,
                       const std::function<void(NodeId, SimTime)>& install);

  /// Aggregate statistics (computed on demand).
  [[nodiscard]] NetworkStats stats() const;

  /// Schedules a near-immediate beacon for `id` (route-change/Trickle
  /// reset); coalesced while one is already pending.
  void trigger_beacon(NodeId id);

 private:
  /// One directed radio edge as seen from its sender, resolved once at
  /// construction so the data/control hot paths never hash into links_.
  struct NeighborLink {
    NodeId peer = kInvalidNode;
    Link* forward = nullptr;  ///< this node -> peer
    Link* reverse = nullptr;  ///< peer -> this node (acks); null if absent
  };

  /// A unicast exchange parked between MAC completion scheduling and its
  /// kTxDone event; slots are free-listed so steady-state transmissions
  /// recycle Packet buffers instead of allocating per hop.
  struct InFlightTx {
    Packet packet;
    TxOutcome outcome;
    NodeId parent = kInvalidNode;
  };

  struct PeriodicHook {
    std::function<void(SimTime)> fn;
    SimTime interval = 0;
  };

  static void event_trampoline(void* target, const Event& ev);
  void on_event(const Event& ev);
  /// The one re-arm helper behind every recurring per-node activity
  /// (beacons, generation, churn, triggered beacons).
  void schedule_node_event(EventKind kind, NodeId id, SimTime delay);

  void build_links(dophy::common::Rng& rng);
  void build_adjacency();
  [[nodiscard]] const NeighborLink& neighbor_link(NodeId from, NodeId to) const;
  [[nodiscard]] std::unique_ptr<LossProcess> make_loss_process(double base,
                                                               dophy::common::Rng& rng) const;
  void schedule_beacon(NodeId id, bool initial);
  void send_beacon(NodeId id);
  void broadcast_beacon(NodeId id);
  void schedule_generation(NodeId id, bool initial);
  void generate_packet(NodeId id);
  void schedule_churn_transition(NodeId id);
  void try_send(NodeId id);
  void complete_transmission(NodeId sender, std::uint32_t slot);
  void run_periodic(std::uint32_t index);
  void handle_arrival(NodeId receiver, NodeId sender, Packet packet, std::uint32_t attempts,
                      std::uint32_t total_attempts);
  void finish_packet(Packet&& packet, PacketFate fate);
  void note_queue_overflow(NodeId id);

  [[nodiscard]] std::uint32_t acquire_inflight();
  void release_inflight(std::uint32_t slot) noexcept;
  [[nodiscard]] Packet acquire_packet();
  void recycle_packet(Packet&& packet);

  NetworkConfig config_;
  PacketInstrumentation* instrumentation_;
  NetworkObserver* observer_ = nullptr;
  Simulator sim_;
  Topology topology_;
  ArqMac mac_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<LinkKey, std::unique_ptr<Link>, LinkKeyHash> links_;
  /// Per-node resolved neighbor links in topology-neighbor order.
  std::vector<std::vector<NeighborLink>> adjacency_;
  TraceCollector traces_;
  DeliveryHandler delivery_handler_;
  ReportMutator report_mutator_;
  std::vector<std::uint16_t> hops_to_sink_;
  std::vector<PeriodicHook> periodic_hooks_;
  std::vector<InFlightTx> inflight_;
  std::vector<std::uint32_t> inflight_free_;
  /// Finished packets waiting to be reused (only fed when outcomes are not
  /// collected — collection moves packets into the trace instead).
  std::vector<Packet> packet_pool_;

  std::uint64_t beacons_sent_ = 0;
  std::uint64_t node_failures_ = 0;
  std::uint64_t dropped_retries_ = 0;
  std::uint64_t dropped_noroute_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t dropped_queue_ = 0;
  std::uint64_t packets_generated_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t control_flood_bytes_ = 0;
  std::uint64_t measurement_air_bytes_ = 0;
};

}  // namespace dophy::net
