#include "dophy/net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "dophy/common/logging.hpp"
#include "dophy/net/pdes/locked_hooks.hpp"
#include "dophy/net/pdes/worker_team.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::net {

namespace {
constexpr SimTime kFloodHopDelay = 50 * kMillisecond;
/// Typical delivery paths are a handful of hops; reserving this up front
/// keeps true_hops off the allocator for the common case.
constexpr std::size_t kTrueHopsReserve = 8;
/// Upper bound on pooled finished packets (pool occupancy is naturally
/// bounded by concurrent in-flight + queued packets; the cap is a backstop).
constexpr std::size_t kPacketPoolCap = 1024;

constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();

/// Interned once; every Network instance shares these registry handles.
/// All handles are relaxed atomics underneath, so LP threads may hit them
/// concurrently without coordination.
struct NetMetrics {
  dophy::obs::Counter generated, delivered;
  dophy::obs::Counter drop_retries, drop_noroute, drop_ttl, drop_queue;
  dophy::obs::Counter beacons, churn_transitions, flood_bytes, air_bytes;
  dophy::obs::Counter pdes_windows, pdes_remote_msgs;
  dophy::obs::HistogramHandle hop_attempts, path_hops;
  dophy::obs::LatencyHistogram e2e_latency, retry_delay;

  static const NetMetrics& get() {
    static const NetMetrics m;
    return m;
  }

 private:
  NetMetrics() {
    auto& r = dophy::obs::Registry::global();
    generated = r.counter("sim.packets.generated");
    delivered = r.counter("sim.packets.delivered");
    drop_retries = r.counter("sim.drop.retries");
    drop_noroute = r.counter("sim.drop.noroute");
    drop_ttl = r.counter("sim.drop.ttl");
    drop_queue = r.counter("sim.drop.queue");
    beacons = r.counter("sim.beacons.sent");
    churn_transitions = r.counter("sim.churn.transitions");
    flood_bytes = r.counter("sim.flood.bytes");
    air_bytes = r.counter("sim.air.bytes");
    pdes_windows = r.counter("sim.pdes.windows");
    pdes_remote_msgs = r.counter("sim.pdes.remote_msgs");
    hop_attempts = r.histogram("sim.hop.attempts", {1, 2, 3, 4, 6, 8, 12, 16});
    path_hops = r.histogram("sim.path.hops", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32});
    e2e_latency = r.latency_histogram("sim.e2e.latency_us");
    retry_delay = r.latency_histogram("sim.hop.retry_delay_us");
  }
};
}

Network::Network(const NetworkConfig& config, PacketInstrumentation* instrumentation)
    : config_(config),
      instrumentation_(instrumentation),
      topology_([&] {
        dophy::common::Rng topo_rng(config.seed ^ 0x746f706fULL);  // "topo"
        return Topology::generate(config.topology, topo_rng);
      }()),
      mac_(config.mac) {
  // Shards (and the partition) come first and consume no randomness, so the
  // master-RNG draw sequence below is byte-identical to the pre-PDES engine.
  build_shards();
  if (multi_lp() && instrumentation_ != nullptr) {
    locked_instrumentation_ =
        std::make_unique<pdes::LockedInstrumentation>(hook_mutex_, *instrumentation_);
    instrumentation_ = locked_instrumentation_.get();
  }

  dophy::common::Rng master(config_.seed);
  for (auto& sh : shards_) sh->traces.set_store_outcomes(config_.collect_outcomes);
  build_links(master);
  build_adjacency();

  nodes_.reserve(topology_.node_count());
  for (std::size_t i = 0; i < topology_.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    nodes_.push_back(std::make_unique<Node>(id, id == kSinkId, config_.routing,
                                            master.fork(), config_.traffic.queue_capacity));
  }
  hops_to_sink_ = topology_.hops_to_sink();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    schedule_beacon(shard_of(id), id, /*initial=*/true);
    if (i != kSinkId) schedule_generation(shard_of(id), id, /*initial=*/true);
  }

  if (config_.churn.enabled) {
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (nodes_[i]->rng().bernoulli(config_.churn.churn_fraction)) {
        const NodeId id = static_cast<NodeId>(i);
        schedule_churn_transition(shard_of(id), id);
      }
    }
  }
}

Network::~Network() = default;

// ---------------------------------------------------------------------------
// LP construction

void Network::build_shards() {
  const std::size_t requested = std::max<std::size_t>(1, config_.pdes.lp_count);
  const std::size_t lp_count = std::min(requested, topology_.node_count());
  partition_ = pdes::build_partition(topology_, static_cast<std::uint32_t>(lp_count));
  lp_of_ = partition_.lp_of;

  shards_.reserve(lp_count);
  for (std::size_t lp = 0; lp < lp_count; ++lp) {
    auto sh = std::make_unique<Shard>();
    sh->net = this;
    sh->lp = static_cast<std::uint32_t>(lp);
    shards_.push_back(std::move(sh));
  }
  sim_ = &shards_[0]->sim;

  if (!multi_lp()) return;

  // Conservative lookahead: nothing a node does at time t can affect another
  // LP before t + L.  Beacons crossing a cut are delivered L late (the one
  // semantic concession); data frames complete one full ARQ attempt plus the
  // queue service delay at minimum, which the clamp keeps >= L by design.
  lookahead_ = std::clamp<SimTime>(
      config_.mac.attempt_duration + config_.mac.queue_service_delay, 1, kFloodHopDelay);

  mailboxes_.resize(lp_count * lp_count);
  for (std::size_t src = 0; src < lp_count; ++src) {
    for (std::size_t dst = 0; dst < lp_count; ++dst) {
      if (src == dst) continue;
      mailboxes_[src * lp_count + dst] =
          std::make_unique<pdes::SpscMailbox<pdes::RemoteMsg>>(config_.pdes.mailbox_capacity);
    }
  }
  alive_snapshot_.assign(topology_.node_count(), 1);

  std::size_t threads = config_.pdes.threads;
  if (threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(lp_count, hw);
  }
  thread_budget_ = std::clamp<std::size_t>(threads, 1, lp_count);
  if (thread_budget_ > 1) team_ = std::make_unique<pdes::WorkerTeam>(thread_budget_);
}

// ---------------------------------------------------------------------------
// Typed event dispatch

void Network::event_trampoline(void* target, const Event& ev) {
  Shard* sh = static_cast<Shard*>(target);
  sh->net->on_event(*sh, ev);
}

void Network::on_event(Shard& sh, const Event& ev) {
  switch (ev.kind) {
    case EventKind::kBeaconSend:
      send_beacon(sh, ev.payload.node_ev.node);
      break;
    case EventKind::kBeaconTrigger: {
      const NodeId id = ev.payload.node_ev.node;
      node(id).set_beacon_trigger_pending(false);
      broadcast_beacon(sh, id);
      break;
    }
    case EventKind::kPacketGenerate:
      generate_packet(sh, ev.payload.node_ev.node);
      break;
    case EventKind::kTxDone:
      complete_transmission(sh, ev.payload.tx.node, ev.payload.tx.slot);
      break;
    case EventKind::kChurnTransition: {
      const NodeId id = ev.payload.node_ev.node;
      NetMetrics::get().churn_transitions.inc();
      set_node_alive(sh, id, !node(id).alive());
      schedule_churn_transition(sh, id);
      break;
    }
    case EventKind::kPeriodic:
      run_periodic(sh, ev.payload.periodic.index);
      break;
    case EventKind::kRemoteBeacon:
      on_remote_beacon(sh, ev);
      break;
    case EventKind::kRemoteArrival:
      on_remote_arrival(sh, ev.payload.remote_arrival.slot);
      break;
    default:
      throw std::logic_error("Network::on_event: unexpected event kind");
  }
}

void Network::schedule_node_event(Shard& sh, EventKind kind, NodeId id, SimTime delay) {
  sh.sim.schedule_event_in(delay, Event::node_event(kind, &event_trampoline, &sh, id));
}

// ---------------------------------------------------------------------------
// Slabs and pools

std::uint32_t Network::acquire_inflight(Shard& sh) {
  if (!sh.inflight_free.empty()) {
    const std::uint32_t slot = sh.inflight_free.back();
    sh.inflight_free.pop_back();
    return slot;
  }
  sh.inflight.emplace_back();
  return static_cast<std::uint32_t>(sh.inflight.size() - 1);
}

Packet Network::acquire_packet(Shard& sh) {
  if (sh.packet_pool.empty()) {
    Packet p;
    p.true_hops.reserve(kTrueHopsReserve);
    return p;
  }
  Packet p = std::move(sh.packet_pool.back());
  sh.packet_pool.pop_back();
  return p;
}

void Network::recycle_packet(Shard& sh, Packet&& packet) {
  if (sh.packet_pool.size() >= kPacketPoolCap) return;
  packet.reset();
  sh.packet_pool.push_back(std::move(packet));
}

// ---------------------------------------------------------------------------
// Churn

void Network::schedule_churn_transition(Shard& sh, NodeId id) {
  Node& n = node(id);
  const double mean_s = n.alive() ? config_.churn.mean_up_s : config_.churn.mean_down_s;
  const SimTime delay =
      static_cast<SimTime>(std::max(1.0, n.rng().exponential(1.0 / mean_s)) * 1e6);
  schedule_node_event(sh, EventKind::kChurnTransition, id, delay);
}

void Network::set_node_alive(NodeId id, bool alive) {
  set_node_alive(shard_of(id), id, alive);
}

void Network::set_node_alive(Shard& sh, NodeId id, bool alive) {
  Node& target = node(id);
  if (target.alive() == alive) return;
  target.set_alive(alive);
  DOPHY_DEBUG("node %u %s at t=%llu us", static_cast<unsigned>(id), alive ? "up" : "down",
              static_cast<unsigned long long>(sh.sim.now()));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kNodeChurn)) {
    tr.event(dophy::obs::EventKind::kNodeChurn, static_cast<std::uint64_t>(sh.sim.now()))
        .u64("node", id)
        .boolean("up", alive);
  }
  if (!alive) {
    ++sh.node_failures;
    // Packets held in the dead node's queue are lost with it.
    while (!target.queue_empty()) {
      finish_packet(sh, target.dequeue(), PacketFate::kDroppedNoRoute);
    }
  } else {
    // Rejoin: stale table entries will be refreshed by beacons; announce
    // ourselves quickly.
    trigger_beacon(sh, id);
  }
}

// ---------------------------------------------------------------------------
// Topology materialization

void Network::build_links(dophy::common::Rng& rng) {
  // Iterate undirected pairs so forward/reverse loss levels correlate.
  for (std::size_t u = 0; u < topology_.node_count(); ++u) {
    for (const NodeId v : topology_.neighbors(static_cast<NodeId>(u))) {
      if (v <= u) continue;
      const double d = topology_.distance(static_cast<NodeId>(u), v);
      const double noise_f = rng.uniform(-config_.loss.noise_spread, config_.loss.noise_spread);
      const double noise_r =
          noise_f + rng.uniform(-config_.loss.reverse_noise, config_.loss.reverse_noise);
      const double scale = config_.loss.loss_scale;
      const double base_f =
          std::clamp(scale * distance_loss(d, topology_.comm_range(), noise_f), 0.001, 0.95);
      const double base_r =
          std::clamp(scale * distance_loss(d, topology_.comm_range(), noise_r), 0.001, 0.95);

      const LinkKey fwd{static_cast<NodeId>(u), v};
      const LinkKey rev{v, static_cast<NodeId>(u)};
      links_.emplace(fwd, std::make_unique<Link>(fwd, make_loss_process(base_f, rng),
                                                 rng.fork()));
      links_.emplace(rev, std::make_unique<Link>(rev, make_loss_process(base_r, rng),
                                                 rng.fork()));
      if (multi_lp()) {
        base_loss_.emplace(fwd, base_f);
        base_loss_.emplace(rev, base_r);
      }
    }
  }
}

void Network::build_adjacency() {
  adjacency_.resize(topology_.node_count());
  for (std::size_t u = 0; u < topology_.node_count(); ++u) {
    const NodeId id = static_cast<NodeId>(u);
    const auto neighbors = topology_.neighbors(id);
    adjacency_[u].reserve(neighbors.size());
    for (const NodeId w : neighbors) {
      NeighborLink nl;
      nl.peer = w;
      nl.forward = links_.at(LinkKey{id, w}).get();
      const auto rev = links_.find(LinkKey{w, id});
      nl.reverse = rev == links_.end() ? nullptr : rev->second.get();
      nl.cut = multi_lp() && lp_of_[id] != lp_of_[w];
      if (nl.cut && nl.reverse != nullptr) {
        // The real reverse link belongs to the peer's LP, so this sender
        // must not sample it for ACK losses.  Clone a distributionally
        // identical stand-in from the recorded base loss, seeded off the
        // link key alone so the clone is stable across lp_count/threads and
        // never touches the master RNG stream.
        const LinkKey rkey{w, id};
        dophy::common::Rng srng(config_.seed ^ 0x61636b73ULL ^  // "acks"
                                (static_cast<std::uint64_t>(rkey.from) << 20) ^ rkey.to);
        auto shadow = std::make_unique<Link>(rkey, make_loss_process(base_loss_.at(rkey), srng),
                                             srng.fork());
        nl.ack_shadow = shadow.get();
        shadow_links_.push_back(std::move(shadow));
      }
      adjacency_[u].push_back(nl);
    }
  }
}

const Network::NeighborLink& Network::neighbor_link(NodeId from, NodeId to) const {
  // Neighbor lists are short (radio degree); a linear scan over the flat
  // array beats hashing into links_ on the per-transmission path.
  for (const NeighborLink& nl : adjacency_[from]) {
    if (nl.peer == to) return nl;
  }
  throw std::out_of_range("Network::neighbor_link: no such edge");
}

std::unique_ptr<LossProcess> Network::make_loss_process(double base,
                                                        dophy::common::Rng& rng) const {
  switch (config_.loss.kind) {
    case LossConfig::Kind::kBernoulli:
      return std::make_unique<BernoulliLoss>(base);
    case LossConfig::Kind::kGilbertElliott: {
      GilbertElliottLoss::Params p;
      p.loss_good = std::max(0.001, base * 0.7);
      p.loss_bad = std::min(0.9, base * config_.loss.ge_bad_multiplier);
      p.mean_good_duration_s = config_.loss.ge_mean_good_s;
      p.mean_bad_duration_s = config_.loss.ge_mean_bad_s;
      return std::make_unique<GilbertElliottLoss>(p, rng);
    }
    case LossConfig::Kind::kDrifting: {
      DriftingLoss::Params p;
      p.base = base;
      p.amplitude = config_.loss.drift_amplitude;
      p.period_s = config_.loss.drift_period_s;
      p.phase = rng.uniform(0.0, 6.283185307179586);
      p.shuffle_interval_s = config_.loss.drift_shuffle_interval_s;
      p.shuffle_spread = config_.loss.drift_shuffle_spread;
      return std::make_unique<DriftingLoss>(p, rng);
    }
  }
  throw std::logic_error("Network::make_loss_process: unknown loss kind");
}

// ---------------------------------------------------------------------------
// Run loop

void Network::run_for(double seconds) {
  run_until(global_now() + static_cast<SimTime>(seconds * 1e6));
}

void Network::run_until(SimTime t) {
  if (!multi_lp()) {
    sim_->run_until(t);
    return;
  }
  run_windows(t);
}

void Network::run_windows(SimTime until) {
  for (;;) {
    SimTime next_ev = kMaxTime;
    for (const auto& sh : shards_) {
      if (!sh->sim.queue().empty()) next_ev = std::min(next_ev, sh->sim.queue().next_time());
    }
    SimTime next_hook = kMaxTime;
    for (const BarrierHook& h : barrier_hooks_) next_hook = std::min(next_hook, h.due);
    if (next_ev > until && next_hook > until) break;

    // Window [gvt_prev, gvt]: every event in it is closer to the earliest
    // pending event than the lookahead, so no cross-LP message produced
    // inside the window can land inside it.  Hooks pin the window end to
    // their due time so they run at a barrier where every clock == due.
    SimTime wend = until < kMaxTime - 1 ? until + 1 : kMaxTime;
    if (next_ev != kMaxTime && next_ev < kMaxTime - lookahead_) {
      wend = std::min(wend, next_ev + lookahead_);
    }
    if (next_hook != kMaxTime) wend = std::min(wend, next_hook + 1);
    const SimTime gvt = wend - 1;

    struct WindowJob {
      Network* net;
      SimTime gvt;
    } job{this, gvt};
    const auto run_shard = +[](void* ctx, std::size_t i) {
      auto* j = static_cast<WindowJob*>(ctx);
      j->net->shards_[i]->sim.run_until(j->gvt);
    };
    if (team_ != nullptr) {
      // Dynamic claiming: any worker may run any LP; shards share no mutable
      // state inside a window, so assignment does not affect results.
      team_->run(shards_.size(), run_shard, &job);
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) run_shard(&job, i);
    }

    drain_mailboxes(wend);
    refresh_alive_snapshot();
    run_due_hooks(gvt);
    ++windows_;
    NetMetrics::get().pdes_windows.inc();
  }
  // Quiescent up to `until`: advance every clock so a subsequent barrier-time
  // read (stats, hooks, schedule_global_in) sees one agreed-upon "now".
  for (auto& sh : shards_) sh->sim.run_until(until);
}

void Network::drain_mailboxes(SimTime window_end) {
  const std::size_t lp_count = shards_.size();
  for (std::size_t dst = 0; dst < lp_count; ++dst) {
    Shard& d = *shards_[dst];
    // Source order is fixed (ascending) and each mailbox preserves FIFO, so
    // the destination queue's tie-break sequence numbers — and therefore the
    // whole run — are identical for every thread count.
    for (std::size_t src = 0; src < lp_count; ++src) {
      if (src == dst) continue;
      drain_scratch_.clear();
      outbox(static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst))
          .drain_into(drain_scratch_);
      for (pdes::RemoteMsg& m : drain_scratch_) {
        const SimTime at = std::max(m.at, window_end);
        ++remote_msgs_;
        NetMetrics::get().pdes_remote_msgs.inc();
        Event ev;
        ev.fn = &event_trampoline;
        ev.target = &d;
        if (m.kind == pdes::RemoteMsg::Kind::kBeacon) {
          ev.kind = EventKind::kRemoteBeacon;
          ev.payload.remote_beacon.etx = m.advertised_etx;
          ev.payload.remote_beacon.sender = m.sender;
          ev.payload.remote_beacon.receiver = m.receiver;
          ev.payload.remote_beacon.seq = m.beacon_seq;
        } else {
          std::uint32_t slot;
          if (!d.arrival_free.empty()) {
            slot = d.arrival_free.back();
            d.arrival_free.pop_back();
          } else {
            d.arrivals.emplace_back();
            slot = static_cast<std::uint32_t>(d.arrivals.size() - 1);
          }
          RemoteArrival& ra = d.arrivals[slot];
          ra.packet = std::move(m.packet);
          ra.sender = m.sender;
          ra.receiver = m.receiver;
          ra.attempts = m.attempts_to_first_rx;
          ra.total_attempts = m.total_attempts;
          ev.kind = EventKind::kRemoteArrival;
          ev.payload.remote_arrival.slot = slot;
        }
        d.sim.schedule_event_at(at, ev);
      }
    }
  }
}

void Network::refresh_alive_snapshot() {
  // Only boundary nodes can be the far end of a cut edge, so only they are
  // ever read through the snapshot.
  for (const NodeId b : partition_.boundary_nodes) {
    alive_snapshot_[b] = nodes_[b]->alive() ? 1 : 0;
  }
}

void Network::run_due_hooks(SimTime now) {
  bool fired_oneshot = false;
  // Index loop: a hook may add further hooks (flood installs, one-shots) and
  // reallocate the vector mid-iteration.
  for (std::size_t i = 0; i < barrier_hooks_.size(); ++i) {
    if (barrier_hooks_[i].due > now) continue;
    if (barrier_hooks_[i].interval > 0) {
      auto fn = barrier_hooks_[i].fn;  // copy: fn may grow the vector
      fn(now);
      barrier_hooks_[i].due = now + barrier_hooks_[i].interval;
    } else {
      auto fn = std::move(barrier_hooks_[i].fn);
      barrier_hooks_[i].due = kMaxTime;  // parked until the erase below
      fn(now);
      fired_oneshot = true;
    }
  }
  if (fired_oneshot) {
    barrier_hooks_.erase(std::remove_if(barrier_hooks_.begin(), barrier_hooks_.end(),
                                        [](const BarrierHook& h) {
                                          return h.interval == 0 && !h.fn;
                                        }),
                         barrier_hooks_.end());
  }
}

// ---------------------------------------------------------------------------
// Remote event delivery

void Network::on_remote_beacon(Shard& sh, const Event& ev) {
  const auto& rb = ev.payload.remote_beacon;
  Node& receiver = node(rb.receiver);
  // Aliveness is evaluated at delivery time on the owning LP (the sender
  // sampled its own link at transmit time, exactly like the local path).
  if (!receiver.alive()) return;
  receiver.routing().on_beacon(rb.sender, rb.etx, rb.seq, sh.sim.now());
  if (receiver.routing().select_parent(sh.sim.now())) {
    if (observer_ != nullptr) observer_->on_parent_change(rb.receiver, sh.sim.now());
    trigger_beacon(sh, rb.receiver);
  }
}

void Network::on_remote_arrival(Shard& sh, std::uint32_t slot) {
  RemoteArrival& ra = sh.arrivals[slot];
  Packet packet = std::move(ra.packet);
  const NodeId sender = ra.sender;
  const NodeId receiver = ra.receiver;
  const std::uint32_t attempts = ra.attempts;
  const std::uint32_t total = ra.total_attempts;
  sh.arrival_free.push_back(slot);
  handle_arrival(sh, receiver, sender, std::move(packet), attempts, total);
}

// ---------------------------------------------------------------------------
// Accessors

Node& Network::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node");
  return *nodes_[id];
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find(LinkKey{from, to});
  if (it == links_.end()) throw std::out_of_range("Network::link: no such edge");
  return *it->second;
}

const Link* Network::find_link(NodeId from, NodeId to) const noexcept {
  const auto it = links_.find(LinkKey{from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

std::vector<LinkKey> Network::link_keys() const {
  std::vector<LinkKey> keys;
  keys.reserve(links_.size());
  for (const auto& [key, link] : links_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TraceCollector& Network::traces() {
  if (!multi_lp()) return shards_[0]->traces;
  merged_traces_ = std::make_unique<TraceCollector>();
  merged_traces_->set_store_outcomes(config_.collect_outcomes);
  for (const auto& sh : shards_) merged_traces_->merge_from(sh->traces);
  return *merged_traces_;
}

void Network::set_observer(NetworkObserver* observer) {
  locked_observer_.reset();
  if (observer != nullptr && multi_lp()) {
    locked_observer_ = std::make_unique<pdes::LockedObserver>(hook_mutex_, *observer);
    observer_ = locked_observer_.get();
  } else {
    observer_ = observer;
  }
}

std::size_t Network::inflight_count() const noexcept {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->inflight.size() - sh->inflight_free.size();
  return n;
}

std::uint64_t Network::executed_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->sim.executed_count();
  return n;
}

// ---------------------------------------------------------------------------
// Control plane: beacons

void Network::schedule_beacon(Shard& sh, NodeId id, bool initial) {
  Node& n = node(id);
  const double interval = config_.routing.beacon_interval_s;
  const double jitter = config_.routing.beacon_jitter;
  const double delay_s = (initial ? n.rng().uniform(0.0, interval)
                                  : interval * n.rng().uniform(1.0 - jitter, 1.0 + jitter)) *
                         n.clock_factor();
  schedule_node_event(sh, EventKind::kBeaconSend, id, static_cast<SimTime>(delay_s * 1e6));
}

void Network::send_beacon(Shard& sh, NodeId id) {
  broadcast_beacon(sh, id);
  schedule_beacon(sh, id, /*initial=*/false);
}

void Network::broadcast_beacon(Shard& sh, NodeId id) {
  Node& n = node(id);
  if (!n.alive()) return;
  const std::uint16_t seq = n.next_beacon_seq();
  const double advertised = n.routing().advertise_etx();
  ++sh.beacons_sent;
  NetMetrics::get().beacons.inc();
  for (const NeighborLink& nl : adjacency_[id]) {
    if (nl.forward->attempt_control(sh.sim.now())) {
      if (nl.cut) {
        // Cross-LP reception: the frame was sampled on our own (owned)
        // forward link; delivery happens one lookahead later on the peer's
        // shard, where its aliveness is checked against live state.
        pdes::RemoteMsg m;
        m.kind = pdes::RemoteMsg::Kind::kBeacon;
        m.at = sh.sim.now() + lookahead_;
        m.sender = id;
        m.receiver = nl.peer;
        m.beacon_seq = seq;
        m.advertised_etx = advertised;
        outbox(sh.lp, lp_of_[nl.peer]).push(std::move(m));
        continue;
      }
      Node& receiver = node(nl.peer);
      if (!receiver.alive()) continue;
      receiver.routing().on_beacon(id, advertised, seq, sh.sim.now());
      if (receiver.routing().select_parent(sh.sim.now())) {
        if (observer_ != nullptr) observer_->on_parent_change(nl.peer, sh.sim.now());
        trigger_beacon(sh, nl.peer);
      }
    }
  }
  if (n.routing().select_parent(sh.sim.now())) {
    if (observer_ != nullptr) observer_->on_parent_change(id, sh.sim.now());
    trigger_beacon(sh, id);
  }
}

void Network::trigger_beacon(NodeId id) { trigger_beacon(shard_of(id), id); }

void Network::trigger_beacon(Shard& sh, NodeId id) {
  Node& n = node(id);
  if (n.beacon_trigger_pending()) return;
  n.set_beacon_trigger_pending(true);
  // Short jittered delay so simultaneous triggers don't synchronize.
  const SimTime delay =
      50 * kMillisecond + static_cast<SimTime>(n.rng().next_below(100)) * kMillisecond;
  schedule_node_event(sh, EventKind::kBeaconTrigger, id, delay);
}

// ---------------------------------------------------------------------------
// Data plane

void Network::schedule_generation(Shard& sh, NodeId id, bool initial) {
  Node& n = node(id);
  const double interval = config_.traffic.data_interval_s;
  const double jitter = config_.traffic.jitter;
  const double delay_s =
      ((initial ? config_.traffic.start_delay_s : 0.0) +
       interval * n.rng().uniform(1.0 - jitter, 1.0 + jitter)) *
      n.clock_factor();
  schedule_node_event(sh, EventKind::kPacketGenerate, id, static_cast<SimTime>(delay_s * 1e6));
}

void Network::generate_packet(Shard& sh, NodeId id) {
  Node& n = node(id);
  if (!n.alive()) {
    schedule_generation(sh, id, /*initial=*/false);
    return;
  }
  ++sh.packets_generated;
  ++n.stats().generated;
  NetMetrics::get().generated.inc();

  Packet packet = acquire_packet(sh);
  packet.origin = id;
  packet.seq = n.next_data_seq();
  packet.created_at = sh.sim.now();
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    packet.span = spans.begin("pkt", static_cast<std::uint64_t>(sh.sim.now()),
                              [&](dophy::obs::EventBuilder& b) {
                                b.u64("origin", id).u64("seq", packet.seq);
                              });
  }
  if (instrumentation_ != nullptr) instrumentation_->on_origin(packet, id, sh.sim.now());
  if (observer_ != nullptr) observer_->on_generated(packet, sh.sim.now());

  if (!n.routing().has_route()) {
    DOPHY_DEBUG("drop: node %u generated packet with no route", static_cast<unsigned>(id));
    finish_packet(sh, std::move(packet), PacketFate::kDroppedNoRoute);
  } else if (!n.enqueue(std::move(packet))) {
    // enqueue only moves from the packet on success.
    note_queue_overflow(sh, id);
    finish_packet(sh, std::move(packet), PacketFate::kDroppedQueue);
  } else {
    try_send(sh, id);
  }
  schedule_generation(sh, id, /*initial=*/false);
}

void Network::try_send(Shard& sh, NodeId id) {
  Node& n = node(id);
  if (n.tx_busy() || n.queue_empty()) return;

  // Parent selection happens on routing events (beacons, datapath
  // inconsistency), not per packet — per-packet re-evaluation would let
  // ETX-sample noise through the hysteresis. Only bail if routeless.
  if (!n.routing().has_route()) {
    DOPHY_DEBUG("drop: node %u lost its route with packets queued", static_cast<unsigned>(id));
    finish_packet(sh, n.dequeue(), PacketFate::kDroppedNoRoute);
    try_send(sh, id);
    return;
  }

  const NodeId parent = n.routing().select_forwarder(n.rng());
  const NeighborLink& nl = neighbor_link(id, parent);

  TxOutcome outcome;
  // Cut edges read the barrier-refreshed liveness snapshot: the real node
  // belongs to another LP mid-window.  At most one lookahead stale, and
  // identical for every thread count.
  const bool channel_used = nl.cut ? alive_snapshot_[parent] != 0 : node(parent).alive();
  if (channel_used) {
    outcome = mac_.transmit(*nl.forward, nl.cut ? nl.ack_shadow : nl.reverse, sh.sim.now(),
                            n.rng());
  } else {
    // Dead receiver: the whole ARQ budget burns with no channel involvement,
    // so the link's loss ground truth is not polluted by churn.
    outcome.delivered = false;
    outcome.total_attempts = config_.mac.max_attempts;
    outcome.delay =
        static_cast<SimTime>(config_.mac.max_attempts) * config_.mac.attempt_duration;
  }
  n.routing().on_data_tx(parent, outcome.total_attempts, outcome.delivered);
  if (observer_ != nullptr) {
    observer_->on_transmission(id, parent, outcome.total_attempts,
                               outcome.attempts_to_first_rx, outcome.delivered,
                               channel_used, sh.sim.now());
  }

  // Park the packet in the in-flight slab; the kTxDone event carries only
  // the slot index, so scheduling a transmission allocates nothing.
  const std::uint32_t slot = acquire_inflight(sh);
  InFlightTx& fl = sh.inflight[slot];
  fl.packet = n.dequeue();
  fl.outcome = outcome;
  fl.parent = parent;
  fl.remote = false;
  fl.span = 0;

  const std::uint64_t air =
      fl.packet.blob.wire_bytes() * static_cast<std::uint64_t>(outcome.total_attempts);
  sh.measurement_air_bytes += air;
  if (air != 0) NetMetrics::get().air_bytes.inc(air);

  n.set_tx_busy(true);
  const SimTime done_at = sh.sim.now() + outcome.delay + config_.mac.queue_service_delay;
  if (nl.cut && outcome.delivered) {
    // The packet crosses the LP boundary now; the local kTxDone below only
    // releases the radio.  done_at >= now + lookahead (one ARQ attempt plus
    // service delay), so the arrival never lands inside the current window.
    fl.remote = true;
    fl.span = fl.packet.span;
    pdes::RemoteMsg m;
    m.kind = pdes::RemoteMsg::Kind::kArrival;
    m.at = done_at;
    m.sender = id;
    m.receiver = parent;
    m.attempts_to_first_rx = outcome.attempts_to_first_rx;
    m.total_attempts = outcome.total_attempts;
    m.packet = std::move(fl.packet);
    outbox(sh.lp, lp_of_[parent]).push(std::move(m));
  }
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = &sh;
  ev.kind = EventKind::kTxDone;
  ev.payload.tx.slot = slot;
  ev.payload.tx.node = id;
  sh.sim.schedule_event_at(done_at, ev);
}

void Network::complete_transmission(Shard& sh, NodeId sender_id, std::uint32_t slot) {
  InFlightTx& fl = sh.inflight[slot];
  const TxOutcome outcome = fl.outcome;
  const NodeId parent = fl.parent;
  const bool remote = fl.remote;
  const std::uint64_t span_id = remote ? fl.span : fl.packet.span;
  Packet packet = std::move(fl.packet);  // empty shell when remote
  fl.remote = false;
  sh.inflight_free.push_back(slot);

  Node& sender = node(sender_id);
  sender.set_tx_busy(false);
  // One completed ARQ exchange: outcome.delay covers first attempt + retries.
  NetMetrics::get().retry_delay.observe(static_cast<std::uint64_t>(outcome.delay));
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    // The exchange occupied [done - service - delay, done - service].
    const auto start = static_cast<std::uint64_t>(
        sh.sim.now() - config_.mac.queue_service_delay - outcome.delay);
    const dophy::obs::SpanId hop = spans.interval(
        "hop", start, static_cast<std::uint64_t>(outcome.delay),
        [&](dophy::obs::EventBuilder& b) {
          b.u64("from", sender_id)
              .u64("to", parent)
              .u64("attempts", outcome.total_attempts)
              .boolean("ok", outcome.delivered);
        });
    spans.link(span_id, hop, static_cast<std::uint64_t>(sh.sim.now()));
  }
  if (remote) {
    // The packet itself crossed via the mailbox at try_send time; here we
    // only account the successful forward and free the radio.
    ++sender.stats().forwarded;
    try_send(sh, sender_id);
    return;
  }
  if (outcome.delivered) {
    ++sender.stats().forwarded;
    handle_arrival(sh, parent, sender_id, std::move(packet), outcome.attempts_to_first_rx,
                   outcome.total_attempts);
  } else {
    auto& tr = dophy::obs::EventTrace::global();
    if (tr.enabled(dophy::obs::EventKind::kArqExhausted)) {
      tr.event(dophy::obs::EventKind::kArqExhausted, static_cast<std::uint64_t>(sh.sim.now()))
          .u64("from", sender_id)
          .u64("to", parent)
          .u64("attempts", outcome.total_attempts)
          .u64("origin", packet.origin);
    }
    finish_packet(sh, std::move(packet), PacketFate::kDroppedRetries);
  }
  try_send(sh, sender_id);
}

void Network::handle_arrival(Shard& sh, NodeId receiver, NodeId sender, Packet packet,
                             std::uint32_t attempts, std::uint32_t total_attempts) {
  Node& r = node(receiver);
  const std::uint64_t dedupe_key =
      (static_cast<std::uint64_t>(packet.flow_key()) << 16) | packet.hop_count;
  const bool duplicate = r.check_and_mark_seen(dedupe_key);
  if (observer_ != nullptr) {
    observer_->on_arrival(packet, receiver, sender, dedupe_key, duplicate, sh.sim.now());
  }
  if (duplicate) {
    ++r.stats().duplicates_discarded;
    recycle_packet(sh, std::move(packet));
    return;
  }

  // Datapath inconsistency (CTP-style): our own parent forwarding data *to*
  // us means somebody's route advertisement is stale — re-select and push a
  // triggered beacon so the loop collapses quickly.
  if (sender == r.routing().parent()) {
    if (r.routing().select_parent(sh.sim.now()) && observer_ != nullptr) {
      observer_->on_parent_change(receiver, sh.sim.now());
    }
    trigger_beacon(sh, receiver);
  }

  ++packet.hop_count;
  if (packet.hop_count > config_.traffic.max_hops) {
    finish_packet(sh, std::move(packet), PacketFate::kDroppedTtl);
    return;
  }

  packet.true_hops.push_back(
      HopRecord{sender, receiver, attempts, total_attempts, sh.sim.now()});
  NetMetrics::get().hop_attempts.observe(attempts);
  if (instrumentation_ != nullptr) {
    instrumentation_->on_hop_received(packet, receiver, sender, attempts, sh.sim.now());
  }

  if (receiver == kSinkId) {
    ++sh.packets_delivered;
    NetMetrics::get().delivered.inc();
    NetMetrics::get().path_hops.observe(packet.true_hops.size());
    NetMetrics::get().e2e_latency.observe(
        static_cast<std::uint64_t>(sh.sim.now() - packet.created_at));
    if (multi_lp() && (report_mutator_ || delivery_handler_)) {
      // User hooks may share state with observer callbacks firing from other
      // LP threads; serialize them on the same hook mutex.
      const std::lock_guard<std::mutex> lock(hook_mutex_);
      if (report_mutator_) report_mutator_(packet, sh.sim.now());
      if (delivery_handler_) delivery_handler_(packet, sh.sim.now());
    } else {
      if (report_mutator_) report_mutator_(packet, sh.sim.now());
      if (delivery_handler_) delivery_handler_(packet, sh.sim.now());
    }
    finish_packet(sh, std::move(packet), PacketFate::kDelivered);
    return;
  }

  if (!r.enqueue(std::move(packet))) {
    note_queue_overflow(sh, receiver);
    finish_packet(sh, std::move(packet), PacketFate::kDroppedQueue);
    return;
  }
  try_send(sh, receiver);
}

void Network::note_queue_overflow(Shard& sh, NodeId id) {
  DOPHY_DEBUG("drop: node %u forwarding queue overflow", static_cast<unsigned>(id));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kQueueOverflow)) {
    tr.event(dophy::obs::EventKind::kQueueOverflow, static_cast<std::uint64_t>(sh.sim.now()))
        .u64("node", id);
  }
}

void Network::finish_packet(Shard& sh, Packet&& packet, PacketFate fate) {
  if (observer_ != nullptr) observer_->on_finished(packet, fate, sh.sim.now());
  const NetMetrics& metrics = NetMetrics::get();
  switch (fate) {
    case PacketFate::kDelivered: break;
    case PacketFate::kDroppedRetries: ++sh.dropped_retries; metrics.drop_retries.inc(); break;
    case PacketFate::kDroppedNoRoute: ++sh.dropped_noroute; metrics.drop_noroute.inc(); break;
    case PacketFate::kDroppedTtl: ++sh.dropped_ttl; metrics.drop_ttl.inc(); break;
    case PacketFate::kDroppedQueue: ++sh.dropped_queue; metrics.drop_queue.inc(); break;
  }
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kPacketFate)) {
    tr.event(dophy::obs::EventKind::kPacketFate, static_cast<std::uint64_t>(sh.sim.now()))
        .u64("origin", packet.origin)
        .u64("seq", packet.seq)
        .str("fate", to_string(fate))
        .u64("hops", packet.true_hops.size())
        .u64("created", static_cast<std::uint64_t>(packet.created_at));
  }
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    spans.end(packet.span, static_cast<std::uint64_t>(sh.sim.now()),
              [&](dophy::obs::EventBuilder& b) {
                b.str("fate", to_string(fate)).u64("hops", packet.true_hops.size());
              });
  }
  PacketOutcome outcome;
  outcome.fate = fate;
  outcome.finished_at = sh.sim.now();
  if (config_.collect_outcomes) {
    outcome.packet = std::move(packet);
    sh.traces.record(std::move(outcome));
  } else {
    // Memory-light mode: the collector keeps tallies and running stats only
    // (store_outcomes is off), so carry just the scalar fields they need.
    outcome.packet.origin = packet.origin;
    outcome.packet.seq = packet.seq;
    outcome.packet.created_at = packet.created_at;
    outcome.packet.hop_count = packet.hop_count;
    sh.traces.record(std::move(outcome));
    recycle_packet(sh, std::move(packet));
  }
}

// ---------------------------------------------------------------------------
// Periodic hooks and floods

void Network::run_periodic(Shard& sh, std::uint32_t index) {
  // Invoke first, then re-arm: the hook's own scheduling must receive
  // earlier sequence numbers than the re-arm (matches the legacy closure
  // engine's event order exactly).  Index again after the call — the hook
  // may add_periodic and reallocate the vector.
  periodic_hooks_[index].fn(sh.sim.now());
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = &sh;
  ev.kind = EventKind::kPeriodic;
  ev.payload.periodic.index = index;
  sh.sim.schedule_event_in(periodic_hooks_[index].interval, ev);
}

void Network::add_periodic(double interval_s, std::function<void(SimTime)> fn) {
  const SimTime interval = static_cast<SimTime>(interval_s * 1e6);
  if (interval <= 0) throw std::invalid_argument("Network::add_periodic: bad interval");
  if (multi_lp()) {
    // Barrier hook: runs between windows with every LP quiescent, so the
    // callback may freely read (or mutate) any node or link.
    barrier_hooks_.push_back(BarrierHook{std::move(fn), interval, global_now() + interval});
    return;
  }
  periodic_hooks_.push_back(PeriodicHook{std::move(fn), interval});
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = shards_[0].get();
  ev.kind = EventKind::kPeriodic;
  ev.payload.periodic.index = static_cast<std::uint32_t>(periodic_hooks_.size() - 1);
  sim_->schedule_event_in(interval, ev);
}

void Network::schedule_global_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Network::schedule_global_in: negative delay");
  if (!multi_lp()) {
    sim_->schedule_in(delay, std::move(fn));
    return;
  }
  barrier_hooks_.push_back(
      BarrierHook{[f = std::move(fn)](SimTime) { f(); }, 0, global_now() + delay});
}

void Network::flood_from_sink(std::size_t payload_bytes,
                              const std::function<void(NodeId, SimTime)>& install) {
  // Epidemic flood: every node rebroadcasts once, so the byte cost is
  // payload * node_count; installs land with per-depth latency.  Cold path:
  // uses the callback escape hatch (one slab entry per node per flood).
  shards_[0]->control_flood_bytes += payload_bytes * nodes_.size();
  NetMetrics::get().flood_bytes.inc(payload_bytes * nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const std::uint16_t depth =
        hops_to_sink_[i] == Topology::kInvalidHops ? 1 : hops_to_sink_[i];
    const SimTime at = global_now() + static_cast<SimTime>(depth) * kFloodHopDelay;
    if (multi_lp()) {
      // Installs may touch cross-cutting state (instrumentation config), so
      // they run as barrier one-shots rather than on the owner LP's queue.
      barrier_hooks_.push_back(
          BarrierHook{[install, id, at](SimTime) { install(id, at); }, 0, at});
    } else {
      sim_->schedule_at(at, [install, id, at] { install(id, at); });
    }
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const auto& sh : shards_) {
    s.packets_generated += sh->packets_generated;
    s.packets_delivered += sh->packets_delivered;
    s.dropped_retries += sh->dropped_retries;
    s.dropped_noroute += sh->dropped_noroute;
    s.dropped_ttl += sh->dropped_ttl;
    s.dropped_queue += sh->dropped_queue;
    s.beacons_sent += sh->beacons_sent;
    s.node_failures += sh->node_failures;
    s.control_flood_bytes += sh->control_flood_bytes;
    s.measurement_air_bytes += sh->measurement_air_bytes;
  }
  for (const auto& [key, link] : links_) {
    s.data_tx_attempts += link->data_attempts();
    s.data_rx_frames += link->data_attempts() - link->data_losses();
    s.control_rx_frames += link->control_attempts() - link->control_losses();
  }
  // Cut-edge ACK traffic lands on the sender-side shadow clones.
  for (const auto& shadow : shadow_links_) {
    s.data_tx_attempts += shadow->data_attempts();
    s.data_rx_frames += shadow->data_attempts() - shadow->data_losses();
    s.control_rx_frames += shadow->control_attempts() - shadow->control_losses();
  }
  for (const auto& n : nodes_) s.parent_changes += n->routing().parent_changes();
  return s;
}

}  // namespace dophy::net
