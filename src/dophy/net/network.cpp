#include "dophy/net/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::net {

namespace {
constexpr SimTime kFloodHopDelay = 50 * kMillisecond;
/// Typical delivery paths are a handful of hops; reserving this up front
/// keeps true_hops off the allocator for the common case.
constexpr std::size_t kTrueHopsReserve = 8;
/// Upper bound on pooled finished packets (pool occupancy is naturally
/// bounded by concurrent in-flight + queued packets; the cap is a backstop).
constexpr std::size_t kPacketPoolCap = 1024;

/// Interned once; every Network instance shares these registry handles.
struct NetMetrics {
  dophy::obs::Counter generated, delivered;
  dophy::obs::Counter drop_retries, drop_noroute, drop_ttl, drop_queue;
  dophy::obs::Counter beacons, churn_transitions, flood_bytes, air_bytes;
  dophy::obs::HistogramHandle hop_attempts, path_hops;
  dophy::obs::LatencyHistogram e2e_latency, retry_delay;

  static const NetMetrics& get() {
    static const NetMetrics m;
    return m;
  }

 private:
  NetMetrics() {
    auto& r = dophy::obs::Registry::global();
    generated = r.counter("sim.packets.generated");
    delivered = r.counter("sim.packets.delivered");
    drop_retries = r.counter("sim.drop.retries");
    drop_noroute = r.counter("sim.drop.noroute");
    drop_ttl = r.counter("sim.drop.ttl");
    drop_queue = r.counter("sim.drop.queue");
    beacons = r.counter("sim.beacons.sent");
    churn_transitions = r.counter("sim.churn.transitions");
    flood_bytes = r.counter("sim.flood.bytes");
    air_bytes = r.counter("sim.air.bytes");
    hop_attempts = r.histogram("sim.hop.attempts", {1, 2, 3, 4, 6, 8, 12, 16});
    path_hops = r.histogram("sim.path.hops", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32});
    e2e_latency = r.latency_histogram("sim.e2e.latency_us");
    retry_delay = r.latency_histogram("sim.hop.retry_delay_us");
  }
};
}

Network::Network(const NetworkConfig& config, PacketInstrumentation* instrumentation)
    : config_(config),
      instrumentation_(instrumentation),
      topology_([&] {
        dophy::common::Rng topo_rng(config.seed ^ 0x746f706fULL);  // "topo"
        return Topology::generate(config.topology, topo_rng);
      }()),
      mac_(config.mac) {
  dophy::common::Rng master(config_.seed);
  traces_.set_store_outcomes(config_.collect_outcomes);
  build_links(master);
  build_adjacency();

  nodes_.reserve(topology_.node_count());
  for (std::size_t i = 0; i < topology_.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    nodes_.push_back(std::make_unique<Node>(id, id == kSinkId, config_.routing,
                                            master.fork(), config_.traffic.queue_capacity));
  }
  hops_to_sink_ = topology_.hops_to_sink();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    schedule_beacon(static_cast<NodeId>(i), /*initial=*/true);
    if (i != kSinkId) schedule_generation(static_cast<NodeId>(i), /*initial=*/true);
  }

  if (config_.churn.enabled) {
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (nodes_[i]->rng().bernoulli(config_.churn.churn_fraction)) {
        schedule_churn_transition(static_cast<NodeId>(i));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Typed event dispatch

void Network::event_trampoline(void* target, const Event& ev) {
  static_cast<Network*>(target)->on_event(ev);
}

void Network::on_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kBeaconSend:
      send_beacon(ev.payload.node_ev.node);
      break;
    case EventKind::kBeaconTrigger: {
      const NodeId id = ev.payload.node_ev.node;
      node(id).set_beacon_trigger_pending(false);
      broadcast_beacon(id);
      break;
    }
    case EventKind::kPacketGenerate:
      generate_packet(ev.payload.node_ev.node);
      break;
    case EventKind::kTxDone:
      complete_transmission(ev.payload.tx.node, ev.payload.tx.slot);
      break;
    case EventKind::kChurnTransition: {
      const NodeId id = ev.payload.node_ev.node;
      NetMetrics::get().churn_transitions.inc();
      set_node_alive(id, !node(id).alive());
      schedule_churn_transition(id);
      break;
    }
    case EventKind::kPeriodic:
      run_periodic(ev.payload.periodic.index);
      break;
    default:
      throw std::logic_error("Network::on_event: unexpected event kind");
  }
}

void Network::schedule_node_event(EventKind kind, NodeId id, SimTime delay) {
  sim_.schedule_event_in(delay, Event::node_event(kind, &event_trampoline, this, id));
}

// ---------------------------------------------------------------------------
// Slabs and pools

std::uint32_t Network::acquire_inflight() {
  if (!inflight_free_.empty()) {
    const std::uint32_t slot = inflight_free_.back();
    inflight_free_.pop_back();
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void Network::release_inflight(std::uint32_t slot) noexcept {
  inflight_free_.push_back(slot);
}

Packet Network::acquire_packet() {
  if (packet_pool_.empty()) {
    Packet p;
    p.true_hops.reserve(kTrueHopsReserve);
    return p;
  }
  Packet p = std::move(packet_pool_.back());
  packet_pool_.pop_back();
  return p;
}

void Network::recycle_packet(Packet&& packet) {
  if (packet_pool_.size() >= kPacketPoolCap) return;
  packet.reset();
  packet_pool_.push_back(std::move(packet));
}

// ---------------------------------------------------------------------------
// Churn

void Network::schedule_churn_transition(NodeId id) {
  Node& n = node(id);
  const double mean_s = n.alive() ? config_.churn.mean_up_s : config_.churn.mean_down_s;
  const SimTime delay =
      static_cast<SimTime>(std::max(1.0, n.rng().exponential(1.0 / mean_s)) * 1e6);
  schedule_node_event(EventKind::kChurnTransition, id, delay);
}

void Network::set_node_alive(NodeId id, bool alive) {
  Node& target = node(id);
  if (target.alive() == alive) return;
  target.set_alive(alive);
  DOPHY_DEBUG("node %u %s at t=%llu us", static_cast<unsigned>(id), alive ? "up" : "down",
              static_cast<unsigned long long>(sim_.now()));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kNodeChurn)) {
    tr.event(dophy::obs::EventKind::kNodeChurn, static_cast<std::uint64_t>(sim_.now()))
        .u64("node", id)
        .boolean("up", alive);
  }
  if (!alive) {
    ++node_failures_;
    // Packets held in the dead node's queue are lost with it.
    while (!target.queue_empty()) {
      finish_packet(target.dequeue(), PacketFate::kDroppedNoRoute);
    }
  } else {
    // Rejoin: stale table entries will be refreshed by beacons; announce
    // ourselves quickly.
    trigger_beacon(id);
  }
}

// ---------------------------------------------------------------------------
// Topology materialization

void Network::build_links(dophy::common::Rng& rng) {
  // Iterate undirected pairs so forward/reverse loss levels correlate.
  for (std::size_t u = 0; u < topology_.node_count(); ++u) {
    for (const NodeId v : topology_.neighbors(static_cast<NodeId>(u))) {
      if (v <= u) continue;
      const double d = topology_.distance(static_cast<NodeId>(u), v);
      const double noise_f = rng.uniform(-config_.loss.noise_spread, config_.loss.noise_spread);
      const double noise_r =
          noise_f + rng.uniform(-config_.loss.reverse_noise, config_.loss.reverse_noise);
      const double scale = config_.loss.loss_scale;
      const double base_f =
          std::clamp(scale * distance_loss(d, topology_.comm_range(), noise_f), 0.001, 0.95);
      const double base_r =
          std::clamp(scale * distance_loss(d, topology_.comm_range(), noise_r), 0.001, 0.95);

      const LinkKey fwd{static_cast<NodeId>(u), v};
      const LinkKey rev{v, static_cast<NodeId>(u)};
      links_.emplace(fwd, std::make_unique<Link>(fwd, make_loss_process(base_f, rng),
                                                 rng.fork()));
      links_.emplace(rev, std::make_unique<Link>(rev, make_loss_process(base_r, rng),
                                                 rng.fork()));
    }
  }
}

void Network::build_adjacency() {
  adjacency_.resize(topology_.node_count());
  for (std::size_t u = 0; u < topology_.node_count(); ++u) {
    const NodeId id = static_cast<NodeId>(u);
    const auto neighbors = topology_.neighbors(id);
    adjacency_[u].reserve(neighbors.size());
    for (const NodeId w : neighbors) {
      NeighborLink nl;
      nl.peer = w;
      nl.forward = links_.at(LinkKey{id, w}).get();
      const auto rev = links_.find(LinkKey{w, id});
      nl.reverse = rev == links_.end() ? nullptr : rev->second.get();
      adjacency_[u].push_back(nl);
    }
  }
}

const Network::NeighborLink& Network::neighbor_link(NodeId from, NodeId to) const {
  // Neighbor lists are short (radio degree); a linear scan over the flat
  // array beats hashing into links_ on the per-transmission path.
  for (const NeighborLink& nl : adjacency_[from]) {
    if (nl.peer == to) return nl;
  }
  throw std::out_of_range("Network::neighbor_link: no such edge");
}

std::unique_ptr<LossProcess> Network::make_loss_process(double base,
                                                        dophy::common::Rng& rng) const {
  switch (config_.loss.kind) {
    case LossConfig::Kind::kBernoulli:
      return std::make_unique<BernoulliLoss>(base);
    case LossConfig::Kind::kGilbertElliott: {
      GilbertElliottLoss::Params p;
      p.loss_good = std::max(0.001, base * 0.7);
      p.loss_bad = std::min(0.9, base * config_.loss.ge_bad_multiplier);
      p.mean_good_duration_s = config_.loss.ge_mean_good_s;
      p.mean_bad_duration_s = config_.loss.ge_mean_bad_s;
      return std::make_unique<GilbertElliottLoss>(p, rng);
    }
    case LossConfig::Kind::kDrifting: {
      DriftingLoss::Params p;
      p.base = base;
      p.amplitude = config_.loss.drift_amplitude;
      p.period_s = config_.loss.drift_period_s;
      p.phase = rng.uniform(0.0, 6.283185307179586);
      p.shuffle_interval_s = config_.loss.drift_shuffle_interval_s;
      p.shuffle_spread = config_.loss.drift_shuffle_spread;
      return std::make_unique<DriftingLoss>(p, rng);
    }
  }
  throw std::logic_error("Network::make_loss_process: unknown loss kind");
}

void Network::run_for(double seconds) {
  run_until(sim_.now() + static_cast<SimTime>(seconds * 1e6));
}

void Network::run_until(SimTime t) { sim_.run_until(t); }

Node& Network::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node");
  return *nodes_[id];
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find(LinkKey{from, to});
  if (it == links_.end()) throw std::out_of_range("Network::link: no such edge");
  return *it->second;
}

const Link* Network::find_link(NodeId from, NodeId to) const noexcept {
  const auto it = links_.find(LinkKey{from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

std::vector<LinkKey> Network::link_keys() const {
  std::vector<LinkKey> keys;
  keys.reserve(links_.size());
  for (const auto& [key, link] : links_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------------------
// Control plane: beacons

void Network::schedule_beacon(NodeId id, bool initial) {
  Node& n = node(id);
  const double interval = config_.routing.beacon_interval_s;
  const double jitter = config_.routing.beacon_jitter;
  const double delay_s = (initial ? n.rng().uniform(0.0, interval)
                                  : interval * n.rng().uniform(1.0 - jitter, 1.0 + jitter)) *
                         n.clock_factor();
  schedule_node_event(EventKind::kBeaconSend, id, static_cast<SimTime>(delay_s * 1e6));
}

void Network::send_beacon(NodeId id) {
  broadcast_beacon(id);
  schedule_beacon(id, /*initial=*/false);
}

void Network::broadcast_beacon(NodeId id) {
  Node& n = node(id);
  if (!n.alive()) return;
  const std::uint16_t seq = n.next_beacon_seq();
  const double advertised = n.routing().advertise_etx();
  ++beacons_sent_;
  NetMetrics::get().beacons.inc();
  for (const NeighborLink& nl : adjacency_[id]) {
    if (nl.forward->attempt_control(sim_.now())) {
      Node& receiver = node(nl.peer);
      if (!receiver.alive()) continue;
      receiver.routing().on_beacon(id, advertised, seq, sim_.now());
      if (receiver.routing().select_parent(sim_.now())) {
        if (observer_ != nullptr) observer_->on_parent_change(nl.peer, sim_.now());
        trigger_beacon(nl.peer);
      }
    }
  }
  if (n.routing().select_parent(sim_.now())) {
    if (observer_ != nullptr) observer_->on_parent_change(id, sim_.now());
    trigger_beacon(id);
  }
}

void Network::trigger_beacon(NodeId id) {
  Node& n = node(id);
  if (n.beacon_trigger_pending()) return;
  n.set_beacon_trigger_pending(true);
  // Short jittered delay so simultaneous triggers don't synchronize.
  const SimTime delay =
      50 * kMillisecond + static_cast<SimTime>(n.rng().next_below(100)) * kMillisecond;
  schedule_node_event(EventKind::kBeaconTrigger, id, delay);
}

// ---------------------------------------------------------------------------
// Data plane

void Network::schedule_generation(NodeId id, bool initial) {
  Node& n = node(id);
  const double interval = config_.traffic.data_interval_s;
  const double jitter = config_.traffic.jitter;
  const double delay_s =
      ((initial ? config_.traffic.start_delay_s : 0.0) +
       interval * n.rng().uniform(1.0 - jitter, 1.0 + jitter)) *
      n.clock_factor();
  schedule_node_event(EventKind::kPacketGenerate, id, static_cast<SimTime>(delay_s * 1e6));
}

void Network::generate_packet(NodeId id) {
  Node& n = node(id);
  if (!n.alive()) {
    schedule_generation(id, /*initial=*/false);
    return;
  }
  ++packets_generated_;
  ++n.stats().generated;
  NetMetrics::get().generated.inc();

  Packet packet = acquire_packet();
  packet.origin = id;
  packet.seq = n.next_data_seq();
  packet.created_at = sim_.now();
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    packet.span = spans.begin("pkt", static_cast<std::uint64_t>(sim_.now()),
                              [&](dophy::obs::EventBuilder& b) {
                                b.u64("origin", id).u64("seq", packet.seq);
                              });
  }
  if (instrumentation_ != nullptr) instrumentation_->on_origin(packet, id, sim_.now());
  if (observer_ != nullptr) observer_->on_generated(packet, sim_.now());

  if (!n.routing().has_route()) {
    DOPHY_DEBUG("drop: node %u generated packet with no route", static_cast<unsigned>(id));
    finish_packet(std::move(packet), PacketFate::kDroppedNoRoute);
  } else if (!n.enqueue(std::move(packet))) {
    // enqueue only moves from the packet on success.
    note_queue_overflow(id);
    finish_packet(std::move(packet), PacketFate::kDroppedQueue);
  } else {
    try_send(id);
  }
  schedule_generation(id, /*initial=*/false);
}

void Network::try_send(NodeId id) {
  Node& n = node(id);
  if (n.tx_busy() || n.queue_empty()) return;

  // Parent selection happens on routing events (beacons, datapath
  // inconsistency), not per packet — per-packet re-evaluation would let
  // ETX-sample noise through the hysteresis. Only bail if routeless.
  if (!n.routing().has_route()) {
    DOPHY_DEBUG("drop: node %u lost its route with packets queued", static_cast<unsigned>(id));
    finish_packet(n.dequeue(), PacketFate::kDroppedNoRoute);
    try_send(id);
    return;
  }

  const NodeId parent = n.routing().select_forwarder(n.rng());
  const NeighborLink& nl = neighbor_link(id, parent);

  TxOutcome outcome;
  const bool channel_used = node(parent).alive();
  if (channel_used) {
    outcome = mac_.transmit(*nl.forward, nl.reverse, sim_.now(), n.rng());
  } else {
    // Dead receiver: the whole ARQ budget burns with no channel involvement,
    // so the link's loss ground truth is not polluted by churn.
    outcome.delivered = false;
    outcome.total_attempts = config_.mac.max_attempts;
    outcome.delay =
        static_cast<SimTime>(config_.mac.max_attempts) * config_.mac.attempt_duration;
  }
  n.routing().on_data_tx(parent, outcome.total_attempts, outcome.delivered);
  if (observer_ != nullptr) {
    observer_->on_transmission(id, parent, outcome.total_attempts,
                               outcome.attempts_to_first_rx, outcome.delivered,
                               channel_used, sim_.now());
  }

  // Park the packet in the in-flight slab; the kTxDone event carries only
  // the slot index, so scheduling a transmission allocates nothing.
  const std::uint32_t slot = acquire_inflight();
  InFlightTx& fl = inflight_[slot];
  fl.packet = n.dequeue();
  fl.outcome = outcome;
  fl.parent = parent;

  const std::uint64_t air =
      fl.packet.blob.wire_bytes() * static_cast<std::uint64_t>(outcome.total_attempts);
  measurement_air_bytes_ += air;
  if (air != 0) NetMetrics::get().air_bytes.inc(air);

  n.set_tx_busy(true);
  const SimTime done_at = sim_.now() + outcome.delay + config_.mac.queue_service_delay;
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = this;
  ev.kind = EventKind::kTxDone;
  ev.payload.tx.slot = slot;
  ev.payload.tx.node = id;
  sim_.schedule_event_at(done_at, ev);
}

void Network::complete_transmission(NodeId sender_id, std::uint32_t slot) {
  InFlightTx& fl = inflight_[slot];
  const TxOutcome outcome = fl.outcome;
  const NodeId parent = fl.parent;
  Packet packet = std::move(fl.packet);
  release_inflight(slot);

  Node& sender = node(sender_id);
  sender.set_tx_busy(false);
  // One completed ARQ exchange: outcome.delay covers first attempt + retries.
  NetMetrics::get().retry_delay.observe(static_cast<std::uint64_t>(outcome.delay));
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    // The exchange occupied [done - service - delay, done - service].
    const auto start = static_cast<std::uint64_t>(
        sim_.now() - config_.mac.queue_service_delay - outcome.delay);
    const dophy::obs::SpanId hop = spans.interval(
        "hop", start, static_cast<std::uint64_t>(outcome.delay),
        [&](dophy::obs::EventBuilder& b) {
          b.u64("from", sender_id)
              .u64("to", parent)
              .u64("attempts", outcome.total_attempts)
              .boolean("ok", outcome.delivered);
        });
    spans.link(packet.span, hop, static_cast<std::uint64_t>(sim_.now()));
  }
  if (outcome.delivered) {
    ++sender.stats().forwarded;
    handle_arrival(parent, sender_id, std::move(packet), outcome.attempts_to_first_rx,
                   outcome.total_attempts);
  } else {
    auto& tr = dophy::obs::EventTrace::global();
    if (tr.enabled(dophy::obs::EventKind::kArqExhausted)) {
      tr.event(dophy::obs::EventKind::kArqExhausted, static_cast<std::uint64_t>(sim_.now()))
          .u64("from", sender_id)
          .u64("to", parent)
          .u64("attempts", outcome.total_attempts)
          .u64("origin", packet.origin);
    }
    finish_packet(std::move(packet), PacketFate::kDroppedRetries);
  }
  try_send(sender_id);
}

void Network::handle_arrival(NodeId receiver, NodeId sender, Packet packet,
                             std::uint32_t attempts, std::uint32_t total_attempts) {
  Node& r = node(receiver);
  const std::uint64_t dedupe_key =
      (static_cast<std::uint64_t>(packet.flow_key()) << 16) | packet.hop_count;
  const bool duplicate = r.check_and_mark_seen(dedupe_key);
  if (observer_ != nullptr) {
    observer_->on_arrival(packet, receiver, sender, dedupe_key, duplicate, sim_.now());
  }
  if (duplicate) {
    ++r.stats().duplicates_discarded;
    recycle_packet(std::move(packet));
    return;
  }

  // Datapath inconsistency (CTP-style): our own parent forwarding data *to*
  // us means somebody's route advertisement is stale — re-select and push a
  // triggered beacon so the loop collapses quickly.
  if (sender == r.routing().parent()) {
    if (r.routing().select_parent(sim_.now()) && observer_ != nullptr) {
      observer_->on_parent_change(receiver, sim_.now());
    }
    trigger_beacon(receiver);
  }

  ++packet.hop_count;
  if (packet.hop_count > config_.traffic.max_hops) {
    finish_packet(std::move(packet), PacketFate::kDroppedTtl);
    return;
  }

  packet.true_hops.push_back(
      HopRecord{sender, receiver, attempts, total_attempts, sim_.now()});
  NetMetrics::get().hop_attempts.observe(attempts);
  if (instrumentation_ != nullptr) {
    instrumentation_->on_hop_received(packet, receiver, sender, attempts, sim_.now());
  }

  if (receiver == kSinkId) {
    ++packets_delivered_;
    NetMetrics::get().delivered.inc();
    NetMetrics::get().path_hops.observe(packet.true_hops.size());
    NetMetrics::get().e2e_latency.observe(
        static_cast<std::uint64_t>(sim_.now() - packet.created_at));
    if (report_mutator_) report_mutator_(packet, sim_.now());
    if (delivery_handler_) delivery_handler_(packet, sim_.now());
    finish_packet(std::move(packet), PacketFate::kDelivered);
    return;
  }

  if (!r.enqueue(std::move(packet))) {
    note_queue_overflow(receiver);
    finish_packet(std::move(packet), PacketFate::kDroppedQueue);
    return;
  }
  try_send(receiver);
}

void Network::note_queue_overflow(NodeId id) {
  DOPHY_DEBUG("drop: node %u forwarding queue overflow", static_cast<unsigned>(id));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kQueueOverflow)) {
    tr.event(dophy::obs::EventKind::kQueueOverflow, static_cast<std::uint64_t>(sim_.now()))
        .u64("node", id);
  }
}

void Network::finish_packet(Packet&& packet, PacketFate fate) {
  if (observer_ != nullptr) observer_->on_finished(packet, fate, sim_.now());
  const NetMetrics& metrics = NetMetrics::get();
  switch (fate) {
    case PacketFate::kDelivered: break;
    case PacketFate::kDroppedRetries: ++dropped_retries_; metrics.drop_retries.inc(); break;
    case PacketFate::kDroppedNoRoute: ++dropped_noroute_; metrics.drop_noroute.inc(); break;
    case PacketFate::kDroppedTtl: ++dropped_ttl_; metrics.drop_ttl.inc(); break;
    case PacketFate::kDroppedQueue: ++dropped_queue_; metrics.drop_queue.inc(); break;
  }
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kPacketFate)) {
    tr.event(dophy::obs::EventKind::kPacketFate, static_cast<std::uint64_t>(sim_.now()))
        .u64("origin", packet.origin)
        .u64("seq", packet.seq)
        .str("fate", to_string(fate))
        .u64("hops", packet.true_hops.size())
        .u64("created", static_cast<std::uint64_t>(packet.created_at));
  }
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    spans.end(packet.span, static_cast<std::uint64_t>(sim_.now()),
              [&](dophy::obs::EventBuilder& b) {
                b.str("fate", to_string(fate)).u64("hops", packet.true_hops.size());
              });
  }
  PacketOutcome outcome;
  outcome.fate = fate;
  outcome.finished_at = sim_.now();
  if (config_.collect_outcomes) {
    outcome.packet = std::move(packet);
    traces_.record(std::move(outcome));
  } else {
    // Memory-light mode: the collector keeps tallies and running stats only
    // (store_outcomes is off), so carry just the scalar fields they need.
    outcome.packet.origin = packet.origin;
    outcome.packet.seq = packet.seq;
    outcome.packet.created_at = packet.created_at;
    outcome.packet.hop_count = packet.hop_count;
    traces_.record(std::move(outcome));
    recycle_packet(std::move(packet));
  }
}

// ---------------------------------------------------------------------------
// Periodic hooks and floods

void Network::run_periodic(std::uint32_t index) {
  // Invoke first, then re-arm: the hook's own scheduling must receive
  // earlier sequence numbers than the re-arm (matches the legacy closure
  // engine's event order exactly).  Index again after the call — the hook
  // may add_periodic and reallocate the vector.
  periodic_hooks_[index].fn(sim_.now());
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = this;
  ev.kind = EventKind::kPeriodic;
  ev.payload.periodic.index = index;
  sim_.schedule_event_in(periodic_hooks_[index].interval, ev);
}

void Network::add_periodic(double interval_s, std::function<void(SimTime)> fn) {
  const SimTime interval = static_cast<SimTime>(interval_s * 1e6);
  if (interval <= 0) throw std::invalid_argument("Network::add_periodic: bad interval");
  periodic_hooks_.push_back(PeriodicHook{std::move(fn), interval});
  Event ev;
  ev.fn = &event_trampoline;
  ev.target = this;
  ev.kind = EventKind::kPeriodic;
  ev.payload.periodic.index = static_cast<std::uint32_t>(periodic_hooks_.size() - 1);
  sim_.schedule_event_in(interval, ev);
}

void Network::flood_from_sink(std::size_t payload_bytes,
                              const std::function<void(NodeId, SimTime)>& install) {
  // Epidemic flood: every node rebroadcasts once, so the byte cost is
  // payload * node_count; installs land with per-depth latency.  Cold path:
  // uses the callback escape hatch (one slab entry per node per flood).
  control_flood_bytes_ += payload_bytes * nodes_.size();
  NetMetrics::get().flood_bytes.inc(payload_bytes * nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const std::uint16_t depth =
        hops_to_sink_[i] == Topology::kInvalidHops ? 1 : hops_to_sink_[i];
    const SimTime at = sim_.now() + static_cast<SimTime>(depth) * kFloodHopDelay;
    sim_.schedule_at(at, [install, id, at] { install(id, at); });
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.packets_generated = packets_generated_;
  s.packets_delivered = packets_delivered_;
  s.dropped_retries = dropped_retries_;
  s.dropped_noroute = dropped_noroute_;
  s.dropped_ttl = dropped_ttl_;
  s.dropped_queue = dropped_queue_;
  s.beacons_sent = beacons_sent_;
  s.node_failures = node_failures_;
  s.control_flood_bytes = control_flood_bytes_;
  s.measurement_air_bytes = measurement_air_bytes_;
  for (const auto& [key, link] : links_) {
    s.data_tx_attempts += link->data_attempts();
    s.data_rx_frames += link->data_attempts() - link->data_losses();
    s.control_rx_frames += link->control_attempts() - link->control_losses();
  }
  for (const auto& n : nodes_) s.parent_changes += n->routing().parent_changes();
  return s;
}

}  // namespace dophy::net
