#pragma once

// Typed event record for the discrete-event engine.  The simulator's hot
// path schedules these flat, trivially-copyable records instead of captured
// lambdas: a kind tag + a small payload union + a static dispatch thunk.
// Pushing one performs zero heap allocations; subsystems (Network, Trickle,
// FaultInjector) register themselves as the `target` and switch on `kind`
// inside their trampoline.  The type-erased std::function escape hatch
// (EventKind::kCallback, slab-backed inside EventQueue) remains for rare,
// cold scheduling such as tests, sink floods, and pipeline snapshots.

#include <cstdint>
#include <type_traits>

#include "dophy/net/types.hpp"

namespace dophy::net {

enum class EventKind : std::uint8_t {
  kCallback = 0,      ///< escape hatch: std::function stored in the queue slab
  kBeaconSend,        ///< periodic routing beacon (payload: node)
  kBeaconTrigger,     ///< coalesced triggered beacon (payload: node)
  kPacketGenerate,    ///< application-layer packet generation (payload: node)
  kTxDone,            ///< unicast ARQ exchange completed (payload: tx)
  kChurnTransition,   ///< node up/down flip (payload: node)
  kPeriodic,          ///< registered periodic hook (payload: periodic)
  kTrickleTimer,      ///< Trickle transmission point (payload: trickle)
  kTrickleInterval,   ///< Trickle end-of-interval (payload: trickle)
  kFaultAction,       ///< fault-plan event firing (payload: fault)
  kFaultRecovery,     ///< timed fault recovery (payload: fault_recovery)
  kRemoteBeacon,      ///< beacon heard across a cut link (payload: remote_beacon)
  kRemoteArrival,     ///< data frame crossing a cut link (payload: remote_arrival)
};

[[nodiscard]] constexpr const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kCallback: return "callback";
    case EventKind::kBeaconSend: return "beacon_send";
    case EventKind::kBeaconTrigger: return "beacon_trigger";
    case EventKind::kPacketGenerate: return "packet_generate";
    case EventKind::kTxDone: return "tx_done";
    case EventKind::kChurnTransition: return "churn_transition";
    case EventKind::kPeriodic: return "periodic";
    case EventKind::kTrickleTimer: return "trickle_timer";
    case EventKind::kTrickleInterval: return "trickle_interval";
    case EventKind::kFaultAction: return "fault_action";
    case EventKind::kFaultRecovery: return "fault_recovery";
    case EventKind::kRemoteBeacon: return "remote_beacon";
    case EventKind::kRemoteArrival: return "remote_arrival";
  }
  return "unknown";
}

struct Event;

/// Static dispatch thunk: `target` is the subsystem object the event was
/// scheduled by; the thunk switches on `ev.kind`.
using EventFn = void (*)(void* target, const Event& ev);

struct Event {
  union Payload {
    std::uint64_t raw[2];                           ///< default-initialized member
    struct { NodeId node; } node_ev;                ///< beacon/generate/churn
    struct { std::uint32_t slot; NodeId node; } tx; ///< in-flight slab slot + sender
    struct { std::uint32_t index; } periodic;       ///< periodic-hook index
    struct { NodeId node; std::uint64_t epoch; } trickle;
    struct { const void* plan_event; } fault;       ///< const FaultEvent*
    struct { NodeId a; NodeId b; std::uint8_t op; } fault_recovery;
    struct { std::uint32_t slot; } callback;        ///< queue-internal slab slot
    /// Cross-LP beacon reception: fits the 16-byte budget exactly.
    struct { double etx; NodeId sender; NodeId receiver; std::uint16_t seq; } remote_beacon;
    struct { std::uint32_t slot; } remote_arrival;  ///< shard arrival-slab slot
  };

  EventFn fn = nullptr;     ///< null only for kCallback (queue runs the slab entry)
  void* target = nullptr;
  Payload payload{};
  EventKind kind = EventKind::kCallback;

  /// Convenience maker for the common single-node payload kinds.
  [[nodiscard]] static Event node_event(EventKind kind, EventFn fn, void* target,
                                        NodeId node) noexcept {
    Event ev;
    ev.fn = fn;
    ev.target = target;
    ev.kind = kind;
    ev.payload.node_ev.node = node;
    return ev;
  }
};

static_assert(std::is_trivially_copyable_v<Event>,
              "Event must stay trivially copyable: the queue relocates records "
              "during heap sifts with plain moves");

}  // namespace dophy::net
