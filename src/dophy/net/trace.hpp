#pragma once

// Delivered/dropped packet traces and aggregate counters the evaluation
// layer consumes.

#include <cstdint>
#include <string_view>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

/// Final fate of a packet.
enum class PacketFate : std::uint8_t {
  kDelivered,
  kDroppedRetries,   ///< ARQ budget exhausted on some hop
  kDroppedNoRoute,   ///< originator/forwarder had no parent
  kDroppedTtl,       ///< hop-count guard (routing loop)
  kDroppedQueue,     ///< forwarding queue overflow
};

[[nodiscard]] constexpr std::string_view to_string(PacketFate fate) noexcept {
  switch (fate) {
    case PacketFate::kDelivered: return "delivered";
    case PacketFate::kDroppedRetries: return "dropped_retries";
    case PacketFate::kDroppedNoRoute: return "dropped_noroute";
    case PacketFate::kDroppedTtl: return "dropped_ttl";
    case PacketFate::kDroppedQueue: return "dropped_queue";
  }
  return "?";
}

struct PacketOutcome {
  Packet packet;          ///< blob + ground-truth hops at end of life
  PacketFate fate = PacketFate::kDelivered;
  SimTime finished_at = 0;
};

/// Collects packet outcomes and derived tallies during a run.
class TraceCollector {
 public:
  void record(PacketOutcome outcome);

  /// When disabled, record() still maintains every tally and running stat
  /// but drops the outcome record itself — outcomes() stays empty and the
  /// collector's memory footprint is O(1) regardless of run length (the
  /// zero-allocation steady state of long memory-light runs).  Enabled by
  /// default.
  void set_store_outcomes(bool store) noexcept { store_outcomes_ = store; }

  [[nodiscard]] const std::vector<PacketOutcome>& outcomes() const noexcept {
    return outcomes_;
  }

  [[nodiscard]] std::uint64_t delivered_count() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_count() const noexcept { return dropped_; }
  [[nodiscard]] double delivery_ratio() const noexcept;

  /// End-to-end latency (seconds) of delivered packets.
  [[nodiscard]] const dophy::common::RunningStats& latency() const noexcept {
    return latency_;
  }
  /// Hop counts of delivered packets.
  [[nodiscard]] const dophy::common::RunningStats& hop_count() const noexcept {
    return hops_;
  }

  /// Per-origin delivery tallies (what end-to-end tomography baselines see),
  /// indexed by origin NodeId.  Flat array instead of a hash map: record()
  /// runs once per finished packet, and node ids are small and dense.
  /// Origins that never finished a packet have all-zero tallies.
  struct OriginTally {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
  };
  [[nodiscard]] const std::vector<OriginTally>& per_origin() const noexcept {
    return per_origin_;
  }

  /// Folds another collector's tallies (and, when this collector stores
  /// outcomes, copies of its outcome records) into this one.  Used to build
  /// the merged view over per-LP collectors after a parallel run.
  void merge_from(const TraceCollector& other);

  void clear() noexcept;

 private:
  std::vector<PacketOutcome> outcomes_;
  std::vector<OriginTally> per_origin_;
  dophy::common::RunningStats latency_;
  dophy::common::RunningStats hops_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  bool store_outcomes_ = true;
};

}  // namespace dophy::net
