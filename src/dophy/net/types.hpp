#pragma once

// Shared simulator vocabulary types.

#include <cstdint>
#include <functional>
#include <limits>

namespace dophy::net {

/// Node identifier.  The sink is always node 0.
using NodeId = std::uint16_t;

inline constexpr NodeId kSinkId = 0;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Simulation time in microseconds.  Integer ticks keep the event queue
/// deterministic across platforms.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Directed link key (sender, receiver) packed for map usage.
struct LinkKey {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  [[nodiscard]] auto operator<=>(const LinkKey&) const noexcept = default;
  [[nodiscard]] std::uint32_t packed() const noexcept {
    return (static_cast<std::uint32_t>(from) << 16) | to;
  }
};

struct LinkKeyHash {
  [[nodiscard]] std::size_t operator()(const LinkKey& k) const noexcept {
    return std::hash<std::uint32_t>{}(k.packed());
  }
};

}  // namespace dophy::net
