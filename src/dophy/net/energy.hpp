#pragma once

// Radio-energy estimation from network counters.  The model follows the
// CC2420-class numbers WSN papers use: a per-frame cost (preamble, header,
// turnaround) plus a per-payload-byte cost.  It is an accounting layer over
// NetworkStats, not a simulation-time model — adequate for comparing the
// energy overhead of measurement schemes, which is what the evaluation
// needs.

#include "dophy/net/network.hpp"

namespace dophy::net {

struct EnergyModel {
  double tx_uj_per_frame = 45.0;  ///< fixed per transmitted frame
  double rx_uj_per_frame = 50.0;  ///< fixed per received frame
  double tx_uj_per_byte = 1.2;    ///< per payload byte transmitted
};

struct EnergyBreakdown {
  double data_tx_uj = 0.0;      ///< data frames (incl. retransmissions)
  double data_rx_uj = 0.0;
  double acks_uj = 0.0;         ///< one ACK per received data frame (tx + rx)
  double beacons_uj = 0.0;      ///< routing beacons (tx + neighbor rx)
  double flood_uj = 0.0;        ///< model-dissemination payload bytes
  double measurement_uj = 0.0;  ///< measurement blob bytes riding data frames

  [[nodiscard]] double total_mj() const noexcept {
    return (data_tx_uj + data_rx_uj + acks_uj + beacons_uj + flood_uj + measurement_uj) /
           1000.0;
  }
  /// Fraction of the total spent on the measurement plane (blob + floods).
  [[nodiscard]] double measurement_fraction() const noexcept {
    const double total = total_mj() * 1000.0;
    return total > 0.0 ? (flood_uj + measurement_uj) / total : 0.0;
  }
};

/// Estimates the radio energy a run consumed from its aggregate counters.
[[nodiscard]] EnergyBreakdown estimate_energy(const NetworkStats& stats,
                                              const EnergyModel& model = {});

}  // namespace dophy::net
