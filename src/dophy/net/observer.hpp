#pragma once

// Passive simulation observer: a second instrumentation surface next to
// PacketInstrumentation, used by dophy::check's ground-truth oracle.  The
// observer sees the authoritative simulator-side events (generation,
// ARQ exchanges, arrivals, parent changes, packet fates) without being able
// to perturb them.  Null by default; every call site in Network is a single
// predictable null-check branch, so an unset observer costs nothing on the
// hot path.

#include <cstdint>

#include "dophy/net/packet.hpp"
#include "dophy/net/trace.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;

  /// A packet entered the network at its origin (after instrumentation
  /// initialized the blob, before any routing decision — packets that are
  /// dropped immediately still count as generated).
  virtual void on_generated(const Packet& packet, SimTime now) = 0;

  /// A unicast ARQ exchange toward `receiver` was resolved.  `attempts` is
  /// the sender-side frame count; `channel_used` is false when the receiver
  /// was dead (the budget burned without touching the link's loss process or
  /// counters).  `attempts_to_first_rx` is 0 unless `delivered`.
  virtual void on_transmission(NodeId sender, NodeId receiver, std::uint32_t attempts,
                               std::uint32_t attempts_to_first_rx, bool delivered,
                               bool channel_used, SimTime now) = 0;

  /// A copy of `packet` arrived at `receiver` from `sender`.  `duplicate`
  /// mirrors the node's dedupe verdict for `dedupe_key`; duplicate copies
  /// are discarded, non-duplicates continue into forwarding/delivery.
  virtual void on_arrival(const Packet& packet, NodeId receiver, NodeId sender,
                          std::uint64_t dedupe_key, bool duplicate, SimTime now) = 0;

  /// `node` re-selected its routing parent (select_parent returned true).
  virtual void on_parent_change(NodeId node, SimTime now) = 0;

  /// The packet's life ended (delivered at the sink or dropped).
  virtual void on_finished(const Packet& packet, PacketFate fate, SimTime now) = 0;
};

}  // namespace dophy::net
