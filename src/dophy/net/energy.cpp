#include "dophy/net/energy.hpp"

namespace dophy::net {

EnergyBreakdown estimate_energy(const NetworkStats& stats, const EnergyModel& model) {
  EnergyBreakdown e;
  const auto d = [](std::uint64_t v) { return static_cast<double>(v); };

  e.data_tx_uj = d(stats.data_tx_attempts) * model.tx_uj_per_frame;
  e.data_rx_uj = d(stats.data_rx_frames) * model.rx_uj_per_frame;
  // One ACK per received data frame; ACK frames are short, charge frame cost
  // only, on both radios.
  e.acks_uj = d(stats.data_rx_frames) * (model.tx_uj_per_frame + model.rx_uj_per_frame);
  // Each beacon is one broadcast tx; receptions are in control_rx_frames
  // (which also contains ACK receptions — subtract them).
  const double ack_rx = d(stats.data_rx_frames);
  const double beacon_rx =
      d(stats.control_rx_frames) > ack_rx ? d(stats.control_rx_frames) - ack_rx : 0.0;
  e.beacons_uj =
      d(stats.beacons_sent) * model.tx_uj_per_frame + beacon_rx * model.rx_uj_per_frame;
  // Flood cost: every node rebroadcasts the payload once (frame + bytes) and
  // its neighbors receive it; we charge tx side + one rx per tx as a
  // conservative floor.
  const double flood_frames =
      stats.control_flood_bytes > 0 ? d(stats.control_flood_bytes) / 64.0 : 0.0;
  e.flood_uj = d(stats.control_flood_bytes) * model.tx_uj_per_byte +
               flood_frames * (model.tx_uj_per_frame + model.rx_uj_per_frame);
  // Measurement blob bytes ride existing data frames: per-byte cost on the
  // tx side (the rx radio is on for the frame anyway).
  e.measurement_uj = d(stats.measurement_air_bytes) * model.tx_uj_per_byte;
  return e;
}

}  // namespace dophy::net
