#pragma once

// Discrete-event priority queue.  Events at equal timestamps execute in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes whole-simulation runs bit-reproducible.

#include <cstdint>
#include <functional>
#include <vector>

#include "dophy/net/types.hpp"

namespace dophy::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`.
  void push(SimTime at, Callback cb);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest event; queue must be non-empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest event's callback (FIFO among equal
  /// times); queue must be non-empty.
  [[nodiscard]] Callback pop();

  void clear() noexcept;

  /// Total events ever pushed (for throughput metrics).
  [[nodiscard]] std::uint64_t pushed_count() const noexcept { return next_seq_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  // Min-heap ordering (std::push_heap builds a max-heap, so invert).
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dophy::net
