#pragma once

// Discrete-event priority queue.  Events at equal timestamps execute in
// scheduling order (a monotonically increasing sequence number breaks ties),
// which makes whole-simulation runs bit-reproducible.
//
// The queue is a 4-ary implicit min-heap of compact 24-byte (time, seq,
// slot) records; the Event payloads themselves sit in a free-listed slab and
// never move during sifts, so each heap level costs one 16-byte key compare
// and one small copy.  Typed events (push_event) cost zero heap allocations
// on the steady-state path once the heap vector and slab have warmed up to
// their peak occupancy.  Type-erased callbacks (push) are the escape hatch
// for cold call sites: the std::function lives in a second free-listed slab
// and the event record carries only its slot, so even escape-hatch traffic
// never churns per-entry callback storage.
//
// Capacity policy: pop() never releases memory — the heap vector and the
// callback slab keep their high-water capacity so long bursty runs do not
// oscillate between shrink and regrow.  clear() likewise keeps capacity (and
// resets pushed_count to zero); call shrink_to_fit() to return memory after
// an exceptional burst.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "dophy/net/event.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// One queue entry: dispatch record plus its total-order key.
  struct Scheduled {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Event event;
  };

  /// Schedules a typed event at absolute time `at`.  Never allocates once
  /// the heap has reached steady-state capacity.
  void push_event(SimTime at, const Event& ev);

  /// Escape hatch: schedules a type-erased callback at absolute time `at`.
  /// The callable is stored in the internal slab (slot recycled on pop).
  void push(SimTime at, Callback cb);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest event; queue must be non-empty.  Inline: the
  /// dispatch loop consults this before every pop.
  [[nodiscard]] SimTime next_time() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty queue");
    return heap_.front().time;
  }

  /// Earliest entry without removing it; queue must be non-empty.
  [[nodiscard]] Scheduled peek() const;

  /// Removes and returns the earliest entry (FIFO among equal times); queue
  /// must be non-empty.  Keeps heap capacity (see header comment).
  [[nodiscard]] Scheduled pop();

  /// Runs and releases a kCallback event's slab entry.  Must be called
  /// exactly once for every popped kCallback event (the simulator does).
  void run_callback(const Event& ev);

  /// Drops all pending entries and releases their callback slab slots.
  /// Resets pushed_count() to zero so a reused queue (e.g. a fresh Network
  /// sharing a Simulator) starts counting from scratch; capacity is kept.
  void clear() noexcept;

  /// Releases heap and slab high-water capacity back to the allocator.
  void shrink_to_fit();

  /// Events pushed since construction or the last clear() (throughput
  /// metrics; also the source of tie-breaking sequence numbers).
  [[nodiscard]] std::uint64_t pushed_count() const noexcept { return next_seq_; }

 private:
  static constexpr std::size_t kArity = 4;

  /// What actually moves during sifts: the total-order key plus the slab
  /// slot holding the Event.  24 bytes, trivially copyable.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Min-heap order: earlier time first, then earlier sequence number.
  /// Written with short-circuit || (not if/else on time) — it compiles to
  /// straight-line compare/setcc code that mispredicts far less on random
  /// keys than the two-branch form.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  void push_entry(SimTime at, const Event& ev);
  void sift_up(std::size_t idx) noexcept;
  [[nodiscard]] std::uint32_t acquire_callback_slot(Callback&& cb);

  std::vector<HeapEntry> heap_;
  std::vector<Event> event_slab_;
  std::vector<std::uint32_t> event_free_;
  std::vector<Callback> callback_slab_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

// The push/pop/sift quartet is defined inline: these run a few million times
// per simulated minute, and keeping them visible to callers (Simulator's
// dispatch loop, benchmarks) is worth several ns per event over out-of-line
// calls.

inline void EventQueue::push_entry(SimTime at, const Event& ev) {
  std::uint32_t slot;
  if (!event_free_.empty()) {
    slot = event_free_.back();
    event_free_.pop_back();
    event_slab_[slot] = ev;
  } else {
    slot = static_cast<std::uint32_t>(event_slab_.size());
    event_slab_.push_back(ev);
  }
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

inline void EventQueue::push_event(SimTime at, const Event& ev) { push_entry(at, ev); }

inline EventQueue::Scheduled EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty queue");
  const HeapEntry top = heap_.front();
  const std::size_t n = heap_.size() - 1;
  if (n != 0) {
    // Bottom-up deletion (Wegener): walk the root hole down along the
    // min-child path without comparing against the displaced last element
    // (3 compares per full fan instead of 4), then sift that element up
    // from the leaf hole.  It came from the bottom of the heap, so the
    // upward pass almost always stops immediately.  Any heap arrangement
    // pops the same (time, seq) order — seq makes the key a total order.
    const HeapEntry moving = heap_[n];
    heap_.pop_back();
    HeapEntry* const h = heap_.data();
    std::size_t idx = 0;
    for (;;) {
      const std::size_t first_child = idx * kArity + 1;
      if (first_child >= n) break;
      std::size_t best;
      if (first_child + kArity <= n) {
        const std::size_t b01 = before(h[first_child + 1], h[first_child])
                                    ? first_child + 1
                                    : first_child;
        const std::size_t b23 = before(h[first_child + 3], h[first_child + 2])
                                    ? first_child + 3
                                    : first_child + 2;
        best = before(h[b23], h[b01]) ? b23 : b01;
      } else {
        // Ternary, not if: conditional-select compiles branch-free, and a
        // partial fan's winner is data-dependent (mispredict-prone).
        best = first_child;
        for (std::size_t c = first_child + 1; c < n; ++c) {
          best = before(h[c], h[best]) ? c : best;
        }
      }
      h[idx] = h[best];
      idx = best;
    }
    while (idx != 0) {
      const std::size_t parent = (idx - 1) / kArity;
      if (!before(moving, h[parent])) break;
      h[idx] = h[parent];
      idx = parent;
    }
    h[idx] = moving;
  } else {
    heap_.pop_back();
  }
  Scheduled out{top.time, top.seq, event_slab_[top.slot]};
  event_free_.push_back(top.slot);
  return out;
}

inline void EventQueue::sift_up(std::size_t idx) noexcept {
  HeapEntry* const h = heap_.data();
  const HeapEntry moving = h[idx];
  while (idx != 0) {
    const std::size_t parent = (idx - 1) / kArity;
    if (!before(moving, h[parent])) break;
    h[idx] = h[parent];
    idx = parent;
  }
  h[idx] = moving;
}

}  // namespace dophy::net
