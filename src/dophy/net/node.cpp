#include "dophy/net/node.hpp"

#include <stdexcept>

namespace dophy::net {

namespace {
constexpr std::size_t kSeenCacheCapacity = 4096;
}

Node::Node(NodeId id, bool is_sink, const RoutingConfig& routing_config,
           dophy::common::Rng rng, std::size_t queue_capacity)
    : id_(id),
      is_sink_(is_sink),
      rng_(rng),
      routing_(id, is_sink, routing_config),
      queue_capacity_(queue_capacity),
      seen_(kSeenCacheCapacity) {}

}  // namespace dophy::net
