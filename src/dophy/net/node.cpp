#include "dophy/net/node.hpp"

#include <stdexcept>

namespace dophy::net {

namespace {
constexpr std::size_t kSeenCacheCapacity = 4096;
}

Node::Node(NodeId id, bool is_sink, const RoutingConfig& routing_config,
           dophy::common::Rng rng, std::size_t queue_capacity)
    : id_(id),
      is_sink_(is_sink),
      rng_(rng),
      routing_(id, is_sink, routing_config),
      queue_capacity_(queue_capacity) {}

bool Node::enqueue(Packet&& packet) {
  if (queue_.size() >= queue_capacity_) return false;
  queue_.push_back(std::move(packet));
  return true;
}

Packet Node::dequeue() {
  if (queue_.empty()) throw std::logic_error("Node::dequeue: empty queue");
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  return p;
}

bool Node::check_and_mark_seen(std::uint64_t dedupe_key) {
  if (seen_.contains(dedupe_key)) return true;
  seen_.insert(dedupe_key);
  seen_order_.push_back(dedupe_key);
  if (seen_order_.size() > kSeenCacheCapacity) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

}  // namespace dophy::net
