#pragma once

// Per-link packet-loss processes.  Each directed link owns one process; the
// MAC consults it once per transmission attempt.  Processes also report
// their *configured* loss level for reference, but estimator scoring uses
// the empirical attempt/loss counters kept by Link — that is the only
// ground truth that is well-defined for bursty and drifting processes.

#include <cstdint>
#include <memory>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/net/types.hpp"

namespace dophy::net {

class LossProcess {
 public:
  virtual ~LossProcess() = default;

  /// Returns true if a transmission attempt at `now` is lost.  May advance
  /// internal state (e.g. Gilbert-Elliott channel state).
  [[nodiscard]] virtual bool attempt_lost(SimTime now, dophy::common::Rng& rng) = 0;

  /// The process's nominal loss probability at `now` (stationary average
  /// for GE; instantaneous value for drifting processes).
  [[nodiscard]] virtual double nominal_loss(SimTime now) const noexcept = 0;
};

/// Independent Bernoulli loss with fixed probability.
class BernoulliLoss final : public LossProcess {
 public:
  explicit BernoulliLoss(double loss_probability);

  [[nodiscard]] bool attempt_lost(SimTime now, dophy::common::Rng& rng) override;
  [[nodiscard]] double nominal_loss(SimTime now) const noexcept override;

 private:
  double p_;
};

/// Two-state Gilbert-Elliott channel: per-attempt loss p_good/p_bad, with
/// exponential sojourn times in each state.
class GilbertElliottLoss final : public LossProcess {
 public:
  struct Params {
    double loss_good = 0.05;
    double loss_bad = 0.6;
    double mean_good_duration_s = 60.0;
    double mean_bad_duration_s = 10.0;
  };

  GilbertElliottLoss(const Params& params, dophy::common::Rng& seed_rng);

  [[nodiscard]] bool attempt_lost(SimTime now, dophy::common::Rng& rng) override;
  [[nodiscard]] double nominal_loss(SimTime now) const noexcept override;

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  void maybe_transition(SimTime now, dophy::common::Rng& rng);

  Params params_;
  bool bad_ = false;
  SimTime next_transition_ = 0;
};

/// Loss that drifts over time: base probability plus a sinusoid, optionally
/// re-randomized at "shuffle" epochs — the knob that drives routing-parent
/// churn in the dynamics experiments (F6).
class DriftingLoss final : public LossProcess {
 public:
  struct Params {
    double base = 0.1;          ///< mean loss level
    double amplitude = 0.0;     ///< sinusoid amplitude
    double period_s = 600.0;    ///< sinusoid period
    double phase = 0.0;         ///< radians
    double shuffle_interval_s = 0.0;  ///< 0 disables re-randomization
    double shuffle_spread = 0.0;      ///< new base drawn base ± spread
  };

  DriftingLoss(const Params& params, dophy::common::Rng& seed_rng);

  [[nodiscard]] bool attempt_lost(SimTime now, dophy::common::Rng& rng) override;
  [[nodiscard]] double nominal_loss(SimTime now) const noexcept override;

 private:
  void maybe_shuffle(SimTime now, dophy::common::Rng& rng);

  Params params_;
  double current_base_;
  SimTime next_shuffle_;
};

/// Piecewise-constant loss schedule: loss stays at each step's level until
/// the next step's start time.  Used by detection-latency experiments that
/// degrade a chosen link at a known instant.
class ScriptedLoss final : public LossProcess {
 public:
  struct Step {
    SimTime from = 0;
    double loss = 0.1;
  };

  /// `steps` must be non-empty and sorted by `from` ascending.
  explicit ScriptedLoss(std::vector<Step> steps);

  [[nodiscard]] bool attempt_lost(SimTime now, dophy::common::Rng& rng) override;
  [[nodiscard]] double nominal_loss(SimTime now) const noexcept override;

 private:
  std::vector<Step> steps_;
};

/// Distance-derived loss probability: low and flat inside half the range,
/// then rising steeply toward the range edge (the shape of measured
/// PRR-vs-distance curves under log-normal shadowing), plus per-link noise.
[[nodiscard]] double distance_loss(double distance, double comm_range, double noise);

}  // namespace dophy::net
