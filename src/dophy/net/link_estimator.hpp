#pragma once

// Node-local link-quality (ETX) estimation, in the spirit of CTP's hybrid
// estimator: unicast data transmissions give the sharpest signal (attempts
// needed per delivered packet IS the link ETX), beacon sequence-number gaps
// provide a bootstrap estimate before any data has flowed.

#include <cstdint>

#include "dophy/net/types.hpp"

namespace dophy::net {

struct LinkEstimatorConfig {
  double data_alpha = 0.95;   ///< EWMA weight on history for data ETX
  double beacon_alpha = 0.8;  ///< EWMA weight on history for beacon PRR
  std::uint32_t min_data_samples = 3;  ///< below this, fall back to beacons
  double initial_etx = 3.0;   ///< optimistic prior for unexplored links
  double max_etx = 16.0;
};

/// Quality estimate for one (self -> neighbor) link.
class LinkQualityEstimate {
 public:
  explicit LinkQualityEstimate(const LinkEstimatorConfig& config) noexcept
      : config_(&config) {}

  /// Records a completed ARQ exchange (total sender-side attempts; failures
  /// charge the full attempt budget like a delivery that cost that much).
  void on_data_tx(std::uint32_t total_attempts, bool delivered) noexcept;

  /// Records a received beacon carrying `seq`; gaps against the previous
  /// sequence number count as losses.
  void on_beacon(std::uint16_t seq) noexcept;

  /// Current ETX estimate for this link.  Memoized: parent selection reads
  /// this once per neighbor per beacon, far more often than samples arrive.
  [[nodiscard]] double etx() const noexcept {
    if (etx_dirty_) {
      etx_cache_ = compute_etx();
      etx_dirty_ = false;
    }
    return etx_cache_;
  }

  /// Inferred inbound beacon PRR (negative when no beacon seen yet).
  [[nodiscard]] double beacon_prr() const noexcept { return beacon_prr_; }

  [[nodiscard]] std::uint32_t data_samples() const noexcept { return data_samples_; }

 private:
  [[nodiscard]] double compute_etx() const noexcept;

  const LinkEstimatorConfig* config_;
  double data_etx_ = 0.0;
  std::uint32_t data_samples_ = 0;
  double beacon_prr_ = -1.0;
  mutable double etx_cache_ = 0.0;
  std::uint16_t last_beacon_seq_ = 0;
  bool have_beacon_ = false;
  mutable bool etx_dirty_ = true;
};

}  // namespace dophy::net
