#include "dophy/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dophy::obs {

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!first_in_scope_.empty()) first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!first_in_scope_.empty()) first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  out_ += '"';
  json_escape_into(out_, name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  out_ += '"';
  json_escape_into(out_, s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

namespace {

void skip_ws(std::string_view text, std::size_t& i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' || text[i] == '\r')) {
    ++i;
  }
}

/// Parses a JSON string starting at the opening quote; advances `i` past the
/// closing quote.  Returns nullopt on malformed escapes / missing quote.
std::optional<std::string> parse_string(std::string_view text, std::size_t& i) {
  if (i >= text.size() || text[i] != '"') return std::nullopt;
  ++i;
  std::string out;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      ++i;
      return out;
    }
    if (c == '\\') {
      if (i + 1 >= text.size()) return std::nullopt;
      const char esc = text[i + 1];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 5 >= text.size()) return std::nullopt;
          const unsigned code =
              static_cast<unsigned>(std::stoul(std::string(text.substr(i + 2, 4)), nullptr, 16));
          if (code > 0x7F) return std::nullopt;  // flat parser: ASCII escapes only
          out += static_cast<char>(code);
          i += 4;
          break;
        }
        default: return std::nullopt;
      }
      i += 2;
      continue;
    }
    out += c;
    ++i;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::map<std::string, std::string>> parse_flat_json_object(std::string_view text) {
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  std::map<std::string, std::string> out;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    skip_ws(text, i);
    return i == text.size() ? std::make_optional(out) : std::nullopt;
  }
  while (true) {
    skip_ws(text, i);
    auto k = parse_string(text, i);
    if (!k) return std::nullopt;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    skip_ws(text, i);
    if (i >= text.size()) return std::nullopt;
    if (text[i] == '"') {
      auto v = parse_string(text, i);
      if (!v) return std::nullopt;
      out.emplace(std::move(*k), std::move(*v));
    } else if (text[i] == '{' || text[i] == '[') {
      return std::nullopt;  // nested: out of scope for the flat parser
    } else {
      const std::size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != '}') ++i;
      std::string literal(text.substr(start, i - start));
      while (!literal.empty() && (literal.back() == ' ' || literal.back() == '\t')) {
        literal.pop_back();
      }
      if (literal.empty()) return std::nullopt;
      out.emplace(std::move(*k), std::move(literal));
    }
    skip_ws(text, i);
    if (i >= text.size()) return std::nullopt;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      skip_ws(text, i);
      return i == text.size() ? std::make_optional(out) : std::nullopt;
    }
    return std::nullopt;
  }
}

// --- recursive parser -------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxJsonDepth = 64;

std::optional<JsonValue> parse_value(std::string_view text, std::size_t& i, int depth);

std::optional<JsonValue> parse_object(std::string_view text, std::size_t& i, int depth) {
  ++i;  // past '{'
  JsonValue out;
  out.type = JsonValue::Type::kObject;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    return out;
  }
  while (true) {
    skip_ws(text, i);
    auto key = parse_string(text, i);
    if (!key) return std::nullopt;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') return std::nullopt;
    ++i;
    auto value = parse_value(text, i, depth);
    if (!value) return std::nullopt;
    out.object.insert_or_assign(std::move(*key), std::move(*value));
    skip_ws(text, i);
    if (i >= text.size()) return std::nullopt;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      return out;
    }
    return std::nullopt;
  }
}

std::optional<JsonValue> parse_array(std::string_view text, std::size_t& i, int depth) {
  ++i;  // past '['
  JsonValue out;
  out.type = JsonValue::Type::kArray;
  skip_ws(text, i);
  if (i < text.size() && text[i] == ']') {
    ++i;
    return out;
  }
  while (true) {
    auto value = parse_value(text, i, depth);
    if (!value) return std::nullopt;
    out.array.push_back(std::move(*value));
    skip_ws(text, i);
    if (i >= text.size()) return std::nullopt;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == ']') {
      ++i;
      return out;
    }
    return std::nullopt;
  }
}

std::optional<JsonValue> parse_value(std::string_view text, std::size_t& i, int depth) {
  if (depth >= kMaxJsonDepth) return std::nullopt;
  skip_ws(text, i);
  if (i >= text.size()) return std::nullopt;
  JsonValue out;
  const char c = text[i];
  if (c == '{') return parse_object(text, i, depth + 1);
  if (c == '[') return parse_array(text, i, depth + 1);
  if (c == '"') {
    auto s = parse_string(text, i);
    if (!s) return std::nullopt;
    out.type = JsonValue::Type::kString;
    out.string = std::move(*s);
    return out;
  }
  if (text.substr(i, 4) == "true") {
    i += 4;
    out.type = JsonValue::Type::kBool;
    out.boolean = true;
    return out;
  }
  if (text.substr(i, 5) == "false") {
    i += 5;
    out.type = JsonValue::Type::kBool;
    out.boolean = false;
    return out;
  }
  if (text.substr(i, 4) == "null") {
    i += 4;
    return out;  // kNull
  }
  // Number: delegate validation to strtod over the literal span.
  const std::size_t start = i;
  while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                             text[i] == '-' || text[i] == '+' || text[i] == '.' ||
                             text[i] == 'e' || text[i] == 'E')) {
    ++i;
  }
  if (i == start) return std::nullopt;
  const std::string literal(text.substr(start, i - start));
  char* end = nullptr;
  out.number = std::strtod(literal.c_str(), &end);
  if (end != literal.c_str() + literal.size()) return std::nullopt;
  out.type = JsonValue::Type::kNumber;
  return out;
}

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  std::size_t i = 0;
  auto value = parse_value(text, i, 0);
  if (!value) return std::nullopt;
  skip_ws(text, i);
  if (i != text.size()) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace dophy::obs
