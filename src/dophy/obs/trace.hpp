#pragma once

// Structured simulation event trace.  Runtime-toggleable per event kind;
// when a kind is disabled the call-site cost is one relaxed atomic load and
// a branch.  Enabled events are emitted as one JSON object per line (JSONL)
// to a file or a test sink.
//
// Call-site pattern (the enabled() check keeps the builder off the fast
// path entirely):
//
//   auto& tr = obs::EventTrace::global();
//   if (tr.enabled(obs::EventKind::kPacketFate)) {
//     tr.event(obs::EventKind::kPacketFate, now_us)
//         .u64("origin", origin).str("fate", "delivered");
//   }
//
// The builder emits on destruction (end of the full expression).  Every line
// carries the event name ("ev"), simulation time in microseconds ("t"), and
// the thread's run context ("run", normally the trial seed) so traces from
// concurrent trials can be demultiplexed.
//
// Emission is batched per thread: lines accumulate in a thread-local buffer
// and reach the file/sink in order, a few hundred at a time, so high-rate
// tracing does not serialize the simulator on the global mutex.  Buffers
// drain on `flush()`, when the destination changes, and on `close()`.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dophy/obs/json.hpp"

namespace dophy::obs {

enum class EventKind : std::uint32_t {
  kPacketFate = 0,    ///< terminal packet outcome (delivered / dropped-*)
  kArqExhausted,      ///< one hop burned the whole retry budget
  kParentChange,      ///< routing adopted a new parent
  kQueueOverflow,     ///< forwarding queue rejected a packet
  kNodeChurn,         ///< node went down / came back up
  kTrickleTx,         ///< Trickle broadcast a model version
  kTrickleReset,      ///< Trickle inconsistency reset an interval
  kModelUpdate,       ///< sink published a new probability-model set
  kDecodeFailure,     ///< sink failed to decode a measurement blob
  kFaultInject,       ///< fault-injection event executed (dophy::fault)
  kSpan,              ///< lifecycle span record (obs::SpanTrace)
  kCount
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

class EventTrace;

/// Builds one JSONL record; emits it via the owning trace on destruction.
class EventBuilder {
 public:
  EventBuilder(const EventBuilder&) = delete;
  EventBuilder& operator=(const EventBuilder&) = delete;
  ~EventBuilder();

  EventBuilder& u64(std::string_view key, std::uint64_t v);
  EventBuilder& i64(std::string_view key, std::int64_t v);
  EventBuilder& f64(std::string_view key, double v);
  EventBuilder& str(std::string_view key, std::string_view v);
  EventBuilder& boolean(std::string_view key, bool v);

 private:
  friend class EventTrace;
  EventBuilder(EventTrace* trace, EventKind kind, std::uint64_t t_us);
  EventTrace* trace_;
  JsonWriter writer_;
};

class EventTrace {
 public:
  using Sink = std::function<void(std::string_view line)>;

  EventTrace();
  ~EventTrace();
  EventTrace(const EventTrace&) = delete;
  EventTrace& operator=(const EventTrace&) = delete;

  /// Process-wide trace used by the sim/tomo instrumentation.
  static EventTrace& global();

  [[nodiscard]] bool enabled(EventKind kind) const noexcept {
    return (mask_.load(std::memory_order_relaxed) &
            (1u << static_cast<std::uint32_t>(kind))) != 0;
  }

  void enable(EventKind kind) noexcept;
  void enable_all() noexcept;
  void disable_all() noexcept;
  void set_mask(std::uint32_t mask) noexcept { mask_.store(mask, std::memory_order_relaxed); }
  [[nodiscard]] std::uint32_t mask() const noexcept {
    return mask_.load(std::memory_order_relaxed);
  }

  /// Routes events to a JSONL file; returns false (and leaves the previous
  /// sink) if the file cannot be opened.  Buffered lines drain to the
  /// previous destination first.
  bool open_file(const std::string& path);
  /// Routes events to an arbitrary sink (tests).  nullptr discards events.
  /// Buffered lines drain to the previous destination first.
  void set_sink(Sink sink);
  /// Flushes and drops the current file/sink.
  void close();
  /// Drains every thread's buffered lines to the current destination.  Lines
  /// buffered by one thread stay in emission order; interleaving across
  /// threads is unspecified.
  void flush();

  /// Starts one event record at simulation time `t_us`; finish it by adding
  /// fields and letting the temporary die.
  [[nodiscard]] EventBuilder event(EventKind kind, std::uint64_t t_us);

  [[nodiscard]] std::uint64_t emitted_count() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

  /// Thread-local run context stamped into every event ("run"); pipelines
  /// set this to the trial seed.
  static void set_run_context(std::uint64_t run_id) noexcept;
  [[nodiscard]] static std::uint64_t run_context() noexcept;

 private:
  friend class EventBuilder;

  /// Per-thread line buffer.  The mutex only contends with flush(): the
  /// owning thread appends, flush() (any thread) swaps the lines out.
  struct Buffer {
    std::mutex m;
    std::vector<std::string> lines;
  };
  static constexpr std::size_t kFlushLines = 256;

  [[nodiscard]] Buffer& local_buffer();
  void write_line(std::string line);
  /// Writes a batch to the destination; caller holds mutex_.  Clears `batch`.
  void emit_batch_locked(std::vector<std::string>& batch);

  std::atomic<std::uint32_t> mask_{0};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<bool> has_destination_{false};
  std::mutex mutex_;  ///< guards file_/sink_/buffers_; never taken under a Buffer::m
  std::ofstream file_;
  Sink sink_;
  std::deque<std::unique_ptr<Buffer>> buffers_;  ///< stable addresses
  const std::uint64_t id_;  ///< process-unique; keys the thread-local buffer cache
};

/// RAII run-context setter (restores the previous context on destruction).
class ScopedRunContext {
 public:
  explicit ScopedRunContext(std::uint64_t run_id) noexcept
      : prev_(EventTrace::run_context()) {
    EventTrace::set_run_context(run_id);
  }
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;
  ~ScopedRunContext() { EventTrace::set_run_context(prev_); }

 private:
  std::uint64_t prev_;
};

}  // namespace dophy::obs
