#include "dophy/obs/perfetto.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "dophy/obs/json.hpp"

namespace dophy::obs {

namespace {

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Emits one trace event object.  `args` receives every field of the source
/// line not consumed by the envelope, so nothing in the trace is lost.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {}

  /// Begins {"ph":ph,"name":name,"ts":ts,"pid":pid,"tid":tid, ...
  JsonWriter& open(std::string_view ph, std::string_view name, std::uint64_t ts,
                   std::uint64_t pid, std::uint64_t tid) {
    writer_ = JsonWriter();
    writer_.begin_object();
    writer_.key("ph").value(ph);
    writer_.key("name").value(name);
    writer_.key("ts").value(ts);
    writer_.key("pid").value(pid);
    writer_.key("tid").value(tid);
    return writer_;
  }

  /// Finishes the object opened by open() and writes it into the array.
  void commit() {
    writer_.end_object();
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << writer_.str();
    ++count_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::ostream& out_;
  JsonWriter writer_;
  bool first_ = true;
  std::size_t count_ = 0;
};

/// Copies every field of `fields` not in the envelope into an "args" object.
void write_args(JsonWriter& w, const std::map<std::string, std::string>& fields,
                std::initializer_list<std::string_view> consumed) {
  auto is_consumed = [&](const std::string& key) {
    for (const auto c : consumed) {
      if (key == c) return true;
    }
    return false;
  };
  w.key("args").begin_object();
  for (const auto& [key, value] : fields) {
    if (is_consumed(key)) continue;
    w.key(key).value(value);
  }
  w.end_object();
}

}  // namespace

std::size_t export_perfetto(std::istream& jsonl, std::ostream& out,
                            const PhaseProfile* phases) {
  out << "{\"traceEvents\":[\n";
  EventWriter events(out);

  // Async begin/end pairs must repeat the begin's cat/name; remember them.
  std::unordered_map<std::uint64_t, std::string> span_kind;
  std::unordered_set<std::uint64_t> runs_seen;

  std::string line;
  while (std::getline(jsonl, line)) {
    if (line.empty()) continue;
    const auto parsed = parse_flat_json_object(line);
    if (!parsed) continue;  // count()-based callers see skipped lines as missing
    const auto field = [&](std::string_view key) -> std::string {
      const auto it = parsed->find(std::string(key));
      return it == parsed->end() ? std::string() : it->second;
    };
    const std::string ev = field("ev");
    if (ev.empty()) continue;
    const std::uint64_t ts = parse_u64(field("t"));
    const std::uint64_t pid = parse_u64(field("run"));
    runs_seen.insert(pid);

    if (ev == "span") {
      const std::string op = field("op");
      const std::uint64_t id = parse_u64(field("id"));
      const std::string kind = field("kind");
      if (op == "b") {
        span_kind[id] = kind;
        auto& w = events.open("b", kind, ts, pid, 0);
        w.key("cat").value(kind);
        w.key("id").value(id);
        write_args(w, *parsed, {"ev", "t", "run", "op", "id", "kind"});
        events.commit();
      } else if (op == "e") {
        const auto it = span_kind.find(id);
        const std::string name = it == span_kind.end() ? std::string("span") : it->second;
        auto& w = events.open("e", name, ts, pid, 0);
        w.key("cat").value(name);
        w.key("id").value(id);
        write_args(w, *parsed, {"ev", "t", "run", "op", "id"});
        events.commit();
      } else if (op == "x") {
        const std::uint64_t dur = parse_u64(field("dur"));
        // Hop intervals carry the transmitting node in "from"; use it as the
        // tid so per-node activity lines up in the UI.
        const std::string from = field("from");
        auto& w = events.open("X", kind, ts, pid, from.empty() ? 0 : parse_u64(from));
        w.key("dur").value(dur);
        write_args(w, *parsed, {"ev", "t", "run", "op", "id", "kind", "dur"});
        events.commit();
      } else if (op == "i") {
        auto& w = events.open("i", kind, ts, pid, 0);
        w.key("s").value("p");  // process-scoped instant
        write_args(w, *parsed, {"ev", "t", "run", "op", "id", "kind"});
        events.commit();
      } else if (op == "l") {
        auto& w = events.open("i", "link", ts, pid, 0);
        w.key("s").value("p");
        write_args(w, *parsed, {"ev", "t", "run", "op"});
        events.commit();
      }
      continue;
    }

    // Ordinary event kinds render as process-scoped instants.
    auto& w = events.open("i", ev, ts, pid, 0);
    w.key("s").value("p");
    write_args(w, *parsed, {"ev", "t", "run"});
    events.commit();
  }

  // Wall-clock phases: back-to-back slices on a dedicated pid 0 track (phase
  // timers have no simulation timestamps, so a synthetic timeline is the
  // honest rendering).
  if (phases != nullptr) {
    std::uint64_t cursor = 0;
    for (const auto& [name, seconds] : phases->seconds()) {
      const auto dur = static_cast<std::uint64_t>(seconds * 1e6);
      auto& w = events.open("X", name, cursor, 0, 0);
      w.key("dur").value(dur);
      w.key("cat").value("phase");
      events.commit();
      cursor += dur;
    }
    runs_seen.insert(0);
  }

  // Name each run's process track.
  for (const std::uint64_t run : runs_seen) {
    auto& w = events.open("M", "process_name", 0, run, 0);
    w.key("args").begin_object();
    w.key("name").value(run == 0 ? std::string("phases")
                                 : "run " + std::to_string(run));
    w.end_object();
    events.commit();
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return events.count();
}

bool export_perfetto_file(const std::string& jsonl_path, const std::string& out_path,
                          const PhaseProfile* phases) {
  std::ifstream in(jsonl_path);
  if (!in.is_open()) return false;
  std::ofstream out(out_path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  export_perfetto(in, out, phases);
  return static_cast<bool>(out);
}

}  // namespace dophy::obs
