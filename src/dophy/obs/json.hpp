#pragma once

// Minimal JSON emission (and a flat-object parser for tests/tooling) used by
// the observability layer.  Deliberately not a general JSON library: the
// writer is a streaming string builder with correct escaping, the parser
// only handles one-level-deep objects (which is exactly what the JSONL event
// trace emits).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dophy::obs {

/// Appends `s` to `out` with JSON string escaping (quotes not included).
void json_escape_into(std::string& out, std::string_view s);

/// Streaming JSON writer.  Call sequence is the caller's responsibility
/// (keys only inside objects, matched begin/end); commas and escaping are
/// handled here.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes `"name":` inside the current object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void separate();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parses a flat (non-nested) JSON object such as an event-trace line into
/// key -> raw value text.  String values are unescaped; numbers/bools keep
/// their literal spelling.  Returns nullopt on malformed or nested input.
[[nodiscard]] std::optional<std::map<std::string, std::string>> parse_flat_json_object(
    std::string_view text);

/// Fully parsed JSON value for offline tooling (run-report diffs, Perfetto
/// schema validation).  A plain tagged struct, not a performance-sensitive
/// DOM: traces are parsed line-by-line with parse_flat_json_object; this is
/// for the nested documents (run reports, trace-event files).
struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Recursive-descent parse of one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Nesting is capped at 64 levels.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace dophy::obs
