#include "dophy/obs/span.hpp"

namespace dophy::obs {

SpanTrace& SpanTrace::global() {
  static SpanTrace spans;
  return spans;
}

void SpanTrace::set_enabled(bool on) noexcept {
  if (on) EventTrace::global().enable(EventKind::kSpan);
  enabled_.store(on, std::memory_order_relaxed);
}

void SpanTrace::link(SpanId from, SpanId to, std::uint64_t t_us) {
  if (from == 0 || to == 0) return;
  auto b = record(t_us);
  b.str("op", "l").u64("id", from).u64("to", to);
}

EventBuilder SpanTrace::record(std::uint64_t t_us) {
  return EventTrace::global().event(EventKind::kSpan, t_us);
}

}  // namespace dophy::obs
