#pragma once

// Chrome-trace-event ("Perfetto JSON") exporter.  Converts a dophy JSONL
// event trace — ordinary events, span records, and optionally the wall-clock
// phase profile — into the trace-event format that ui.perfetto.dev and
// chrome://tracing load directly:
//
//   {"traceEvents":[{"ph":"b","name":"pkt",...}, ...],"displayTimeUnit":"ms"}
//
// Mapping:
//   span op "b"/"e"  -> async begin/end ("ph":"b"/"e", same cat/name/id)
//   span op "x"      -> complete slice ("ph":"X" with "dur")
//   span op "i"/"l"  -> instant ("ph":"i"); links carry from/to in args
//   other events     -> instant ("ph":"i") named after the event kind
//   phase profile    -> synthesized back-to-back "X" slices on pid 0
//
// Timestamps pass through unchanged (simulation microseconds, the unit the
// format expects); each run context becomes one "pid" so concurrent trials
// separate into process tracks.

#include <iosfwd>
#include <string>

#include "dophy/obs/timer.hpp"

namespace dophy::obs {

/// Streams `jsonl` (one event per line) to `out` as trace-event JSON.
/// Unparseable lines are skipped and counted; returns the number of trace
/// events written.  `phases`, when given, adds one slice per phase timer.
std::size_t export_perfetto(std::istream& jsonl, std::ostream& out,
                            const PhaseProfile* phases = nullptr);

/// File wrapper around export_perfetto; returns false if either path cannot
/// be opened.
bool export_perfetto_file(const std::string& jsonl_path, const std::string& out_path,
                          const PhaseProfile* phases = nullptr);

}  // namespace dophy::obs
