#pragma once

// Offline analysis of dophy JSONL event traces and run reports — the logic
// behind tools/dophy_trace.  Lives in dophy_obs (not the tool) so tests can
// drive it directly:
//
//   summarize_trace   one pass over a JSONL trace -> drop-cause table,
//                     exact end-to-end latency percentiles per hop count,
//                     per-link ARQ retry distributions
//   diff_reports      compare two --metrics-json run reports (counters,
//                     phase timings, histogram totals) against a threshold
//
// Latencies here are exact (samples are kept and sorted), unlike the
// registry's log2 histograms — a trace is an offline artifact, so the memory
// trade-off flips.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dophy::obs {

/// Exact latency stats for one hop-count bucket (microseconds).
struct LatencyStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

/// Per-link ARQ behaviour aggregated from hop span intervals.
struct LinkRetryStats {
  std::uint64_t exchanges = 0;   ///< completed ARQ exchanges on the link
  std::uint64_t failures = 0;    ///< exchanges that burned the whole budget
  std::uint64_t attempts_sum = 0;
  std::uint32_t attempts_max = 0;
  [[nodiscard]] double mean_attempts() const noexcept {
    return exchanges == 0 ? 0.0
                          : static_cast<double>(attempts_sum) / static_cast<double>(exchanges);
  }
};

struct TraceSummary {
  std::uint64_t lines = 0;         ///< total lines seen
  std::uint64_t unparseable = 0;   ///< lines that failed the JSONL parser
  std::map<std::string, std::uint64_t> event_counts;  ///< "ev" -> lines
  std::map<std::string, std::uint64_t> fate_counts;   ///< packet fate -> count
  /// Delivered end-to-end latency percentiles keyed by hop count; key 0
  /// aggregates every delivered packet.
  std::map<std::uint64_t, LatencyStats> latency_by_hops;
  /// (from, to) -> retry distribution, from hop span intervals (requires the
  /// trace to have been captured with spans enabled).
  std::map<std::pair<std::uint64_t, std::uint64_t>, LinkRetryStats> link_retries;
  /// Span lifecycle accounting (op "b" vs op "e" records).
  std::uint64_t spans_begun = 0;
  std::uint64_t spans_ended = 0;
};

/// One pass over a JSONL trace.
[[nodiscard]] TraceSummary summarize_trace(std::istream& jsonl);

/// Human-readable rendering: drop-cause table, per-hop-count latency
/// percentiles, and the top `max_links` busiest links by exchanges.
void print_trace_summary(std::ostream& os, const TraceSummary& summary,
                         std::size_t max_links = 10);

struct ReportDiffOptions {
  double threshold_pct = 10.0;  ///< |relative change| that flags a row
  /// Counters whose absolute value is below this on both sides are skipped
  /// (tiny denominators make relative change meaningless).
  double min_magnitude = 1.0;
};

struct ReportDiff {
  struct Row {
    std::string section;  ///< "counter" | "phase_s" | "histogram_total"
    std::string name;
    double before = 0.0;
    double after = 0.0;
    double change_pct = 0.0;  ///< (after-before)/before * 100; 0 when before==0
    bool exceeded = false;
  };
  std::string error;  ///< nonempty when either report failed to parse
  std::vector<Row> rows;
  bool any_exceeded = false;
};

/// Diffs two run-report JSON documents (obs::RunReport::to_json shape).
/// Rows are every metric present in either report, flagged when the relative
/// change exceeds the threshold.
[[nodiscard]] ReportDiff diff_reports(const std::string& before_json,
                                      const std::string& after_json,
                                      const ReportDiffOptions& opts = {});

/// Renders the diff as a table; flagged rows are marked in the last column.
void print_report_diff(std::ostream& os, const ReportDiff& diff);

}  // namespace dophy::obs
