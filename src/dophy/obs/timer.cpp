#include "dophy/obs/timer.hpp"

#include <mutex>

namespace dophy::obs {

namespace {
std::mutex g_phase_mutex;
PhaseProfile& global_profile_unlocked() {
  static PhaseProfile profile;
  return profile;
}
}  // namespace

void merge_global_phases(const PhaseProfile& profile) {
  const std::lock_guard<std::mutex> lock(g_phase_mutex);
  global_profile_unlocked().merge(profile);
}

PhaseProfile global_phases() {
  const std::lock_guard<std::mutex> lock(g_phase_mutex);
  return global_profile_unlocked();
}

void reset_global_phases() {
  const std::lock_guard<std::mutex> lock(g_phase_mutex);
  global_profile_unlocked() = PhaseProfile();
}

}  // namespace dophy::obs
