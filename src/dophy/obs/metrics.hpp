#pragma once

// Low-overhead metrics registry: counters, gauges, and fixed-bucket
// histograms.  Counter/histogram updates land in thread-local shards (one
// relaxed atomic add on an uncontended cache line), so simulation code can
// count freely from the trial thread pool; `snapshot()` sums the shards.
// Because every sharded metric is additive, the sum is independent of thread
// scheduling — `eval::run_trials` relies on this for deterministic
// aggregation.
//
// Handles are cheap POD-ish values safe to stash in function-local statics:
//
//   static const auto c = obs::Registry::global().counter("sim.drop.noroute");
//   c.inc();
//
// Gauges are process-global (not sharded): last store wins, which is only
// meaningful when a single thread owns the gauge.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dophy::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time view of one histogram.  `counts` has `bounds.size() + 1`
/// entries; bucket i counts values <= bounds[i], the final bucket is the
/// overflow tail.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;  ///< sum of counts
  std::uint64_t sum = 0;    ///< sum of observed values

  [[nodiscard]] double mean() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(total);
  }

  /// Estimates the q-quantile (q in [0, 1]) by locating the bucket holding
  /// rank q*total and interpolating linearly inside it.  The estimate is
  /// always within the true quantile's bucket, so for log2 bounds the value
  /// is within a factor of 2 of the exact quantile.  Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Strictly increasing powers of two {1, 2, 4, ..., 2^(buckets-1)} — the
/// bound vector behind every latency histogram.
[[nodiscard]] std::vector<std::uint64_t> log2_bounds(std::uint32_t buckets);

/// Point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and histograms become the difference vs `base` (metrics absent
  /// from `base` keep their value); gauges keep their current reading.
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& base) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  [[nodiscard]] std::string to_json() const;
};

class Registry;

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  void observe(std::uint64_t value) const noexcept;

 private:
  friend class Registry;
  HistogramHandle(Registry* reg, std::uint32_t slot, const std::vector<std::uint64_t>* bounds)
      : reg_(reg), slot_(slot), bounds_(bounds) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;                           ///< first bucket slot
  const std::vector<std::uint64_t>* bounds_ = nullptr;  ///< stable (deque-backed)
};

/// Histogram specialized for log2 bounds: `observe` replaces the binary
/// search with a bit_width computation (a few ns), which matters on the
/// per-packet latency paths.  Registered as an ordinary histogram, so
/// sharding, snapshots, and the deterministic delta are unchanged.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  void observe(std::uint64_t value) const noexcept;

 private:
  friend class Registry;
  LatencyHistogram(Registry* reg, std::uint32_t slot, std::uint32_t buckets)
      : reg_(reg), slot_(slot), buckets_(buckets) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;     ///< first bucket slot
  std::uint32_t buckets_ = 0;  ///< == bounds.size(); overflow is bucket `buckets_`
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by the sim/tomo/eval instrumentation.
  static Registry& global();

  /// Interns `name` (idempotent: same name -> same metric).  Throws
  /// std::logic_error if the name is already registered as another kind.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  /// `bounds` are inclusive upper bucket bounds, strictly increasing,
  /// non-empty.  Re-interning an existing histogram ignores `bounds`.
  [[nodiscard]] HistogramHandle histogram(std::string_view name,
                                          std::vector<std::uint64_t> bounds);
  /// Log2-bucketed histogram with bounds {1, 2, ..., 2^(buckets-1)}.  The
  /// default 40 buckets cover ~6.4 days at microsecond resolution.
  [[nodiscard]] LatencyHistogram latency_histogram(std::string_view name,
                                                  std::uint32_t buckets = 40);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Turns recording on/off (on by default).  While disabled, counter and
  /// histogram updates are a relaxed load + branch — microbenchmarks that
  /// must not measure instrumentation flip this off.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every shard slot and gauge.  Only safe while no other thread is
  /// updating metrics (e.g. between bench sections).
  void reset();

 private:
  friend class Counter;
  friend class HistogramHandle;
  friend class LatencyHistogram;

  struct Def {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t slot = 0;   ///< first slot (counter/histogram) or gauge index
    std::uint32_t width = 0;  ///< number of slots
    std::vector<std::uint64_t> bounds;  ///< histogram only
  };

  /// Per-thread slot storage.  Chunked so the arrays never reallocate:
  /// writers publish chunks with release stores, the snapshot thread loads
  /// with acquire, and slot updates are relaxed atomics (single writer).
  struct Shard {
    static constexpr std::size_t kChunkSlots = 512;
    static constexpr std::size_t kMaxChunks = 64;  ///< 32k slots, plenty
    std::array<std::atomic<std::atomic<std::uint64_t>*>, kMaxChunks> chunks{};

    std::atomic<std::uint64_t>& cell(std::uint32_t slot);
    [[nodiscard]] std::uint64_t read(std::uint32_t slot) const noexcept;
    void zero() noexcept;
    ~Shard();
  };

  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] std::uint32_t intern(std::string_view name, MetricKind kind,
                                     std::uint32_t width, std::vector<std::uint64_t> bounds);

  mutable std::mutex mutex_;
  std::deque<Def> defs_;  ///< stable addresses (HistogramHandle::bounds_)
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::deque<std::unique_ptr<Shard>> shards_;
  std::deque<std::atomic<double>> gauges_;
  std::atomic<bool> enabled_{true};
  std::uint32_t next_slot_ = 0;
  const std::uint64_t id_;  ///< process-unique; keys the thread-local shard cache
};

}  // namespace dophy::obs
