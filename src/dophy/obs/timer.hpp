#pragma once

// Scoped wall-clock timers for phase profiling.  Timings are kept out of the
// metrics Registry on purpose: registry contents must stay deterministic for
// a fixed seed (eval::run_trials asserts this), and wall time is not.
// Phase durations instead accumulate in PhaseProfile objects — one per
// pipeline run — and in a process-global profile that the bench report
// writer snapshots.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace dophy::obs {

/// Accumulated wall-clock seconds (and call counts) per named phase.
class PhaseProfile {
 public:
  void add(const std::string& name, double seconds) {
    seconds_[name] += seconds;
    ++calls_[name];
  }

  void merge(const PhaseProfile& other) {
    for (const auto& [name, s] : other.seconds_) seconds_[name] += s;
    for (const auto& [name, n] : other.calls_) calls_[name] += n;
  }

  [[nodiscard]] const std::map<std::string, double>& seconds() const noexcept {
    return seconds_;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& calls() const noexcept {
    return calls_;
  }

 private:
  std::map<std::string, double> seconds_;
  std::map<std::string, std::uint64_t> calls_;
};

/// RAII phase timer: records elapsed wall time into a PhaseProfile when it
/// goes out of scope (or at an explicit stop()).
class ObsTimer {
 public:
  ObsTimer(PhaseProfile& profile, std::string name)
      : profile_(&profile), name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

  ~ObsTimer() { stop(); }

  /// Seconds since construction; monotonically non-decreasing, never negative.
  [[nodiscard]] double elapsed_s() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

  /// Records the elapsed time now; idempotent (the destructor becomes a
  /// no-op afterwards).
  void stop() {
    if (profile_ == nullptr) return;
    profile_->add(name_, elapsed_s());
    profile_ = nullptr;
  }

 private:
  PhaseProfile* profile_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Merges `profile` into the process-global phase profile (thread-safe).
void merge_global_phases(const PhaseProfile& profile);

/// Copy of the process-global phase profile (thread-safe).
[[nodiscard]] PhaseProfile global_phases();

/// Clears the process-global phase profile (thread-safe).
void reset_global_phases();

}  // namespace dophy::obs
