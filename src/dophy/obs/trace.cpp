#include "dophy/obs/trace.hpp"

namespace dophy::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kPacketFate: return "packet_fate";
    case EventKind::kArqExhausted: return "arq_exhausted";
    case EventKind::kParentChange: return "parent_change";
    case EventKind::kQueueOverflow: return "queue_overflow";
    case EventKind::kNodeChurn: return "node_churn";
    case EventKind::kTrickleTx: return "trickle_tx";
    case EventKind::kTrickleReset: return "trickle_reset";
    case EventKind::kModelUpdate: return "model_update";
    case EventKind::kDecodeFailure: return "decode_failure";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kCount: break;
  }
  return "?";
}

namespace {
thread_local std::uint64_t t_run_context = 0;
constexpr std::uint32_t kAllMask =
    (1u << static_cast<std::uint32_t>(EventKind::kCount)) - 1;
}  // namespace

void EventTrace::set_run_context(std::uint64_t run_id) noexcept { t_run_context = run_id; }
std::uint64_t EventTrace::run_context() noexcept { return t_run_context; }

EventTrace& EventTrace::global() {
  static EventTrace trace;
  return trace;
}

void EventTrace::enable(EventKind kind) noexcept {
  mask_.fetch_or(1u << static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
}

void EventTrace::enable_all() noexcept { set_mask(kAllMask); }
void EventTrace::disable_all() noexcept { set_mask(0); }

bool EventTrace::open_file(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::move(file);
  sink_ = nullptr;
  return true;
}

void EventTrace::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_.close();
  sink_ = std::move(sink);
}

void EventTrace::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  sink_ = nullptr;
}

EventBuilder EventTrace::event(EventKind kind, std::uint64_t t_us) {
  return EventBuilder(this, kind, t_us);
}

void EventTrace::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) {
    file_ << line << '\n';
  } else if (sink_) {
    sink_(line);
  } else {
    return;  // no destination: drop silently (still counts as not emitted)
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

EventBuilder::EventBuilder(EventTrace* trace, EventKind kind, std::uint64_t t_us)
    : trace_(trace) {
  writer_.begin_object();
  writer_.key("ev").value(to_string(kind));
  writer_.key("t").value(t_us);
  writer_.key("run").value(EventTrace::run_context());
}

EventBuilder::~EventBuilder() {
  writer_.end_object();
  trace_->write_line(writer_.str());
}

EventBuilder& EventBuilder::u64(std::string_view key, std::uint64_t v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::i64(std::string_view key, std::int64_t v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::f64(std::string_view key, double v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::str(std::string_view key, std::string_view v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::boolean(std::string_view key, bool v) {
  writer_.key(key).value(v);
  return *this;
}

}  // namespace dophy::obs
