#include "dophy/obs/trace.hpp"

#include <unordered_map>

namespace dophy::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kPacketFate: return "packet_fate";
    case EventKind::kArqExhausted: return "arq_exhausted";
    case EventKind::kParentChange: return "parent_change";
    case EventKind::kQueueOverflow: return "queue_overflow";
    case EventKind::kNodeChurn: return "node_churn";
    case EventKind::kTrickleTx: return "trickle_tx";
    case EventKind::kTrickleReset: return "trickle_reset";
    case EventKind::kModelUpdate: return "model_update";
    case EventKind::kDecodeFailure: return "decode_failure";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kSpan: return "span";
    case EventKind::kCount: break;
  }
  return "?";
}

namespace {
thread_local std::uint64_t t_run_context = 0;
constexpr std::uint32_t kAllMask =
    (1u << static_cast<std::uint32_t>(EventKind::kCount)) - 1;
std::atomic<std::uint64_t> g_trace_ids{1};
}  // namespace

void EventTrace::set_run_context(std::uint64_t run_id) noexcept { t_run_context = run_id; }
std::uint64_t EventTrace::run_context() noexcept { return t_run_context; }

EventTrace::EventTrace() : id_(g_trace_ids.fetch_add(1, std::memory_order_relaxed)) {}

EventTrace::~EventTrace() { close(); }

EventTrace& EventTrace::global() {
  static EventTrace trace;  // destructor flushes buffered lines at exit
  return trace;
}

void EventTrace::enable(EventKind kind) noexcept {
  mask_.fetch_or(1u << static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
}

void EventTrace::enable_all() noexcept { set_mask(kAllMask); }
void EventTrace::disable_all() noexcept { set_mask(0); }

bool EventTrace::open_file(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) return false;
  flush();  // drain buffered lines to the previous destination
  const std::lock_guard<std::mutex> lock(mutex_);
  file_ = std::move(file);
  sink_ = nullptr;
  has_destination_.store(true, std::memory_order_relaxed);
  return true;
}

void EventTrace::set_sink(Sink sink) {
  flush();  // drain buffered lines to the previous destination
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) file_.close();
  sink_ = std::move(sink);
  has_destination_.store(static_cast<bool>(sink_), std::memory_order_relaxed);
}

void EventTrace::close() {
  flush();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
  sink_ = nullptr;
  has_destination_.store(false, std::memory_order_relaxed);
}

void EventTrace::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> batch;
  for (const auto& buf : buffers_) {
    {
      const std::lock_guard<std::mutex> buf_lock(buf->m);
      batch.swap(buf->lines);
    }
    emit_batch_locked(batch);
  }
}

EventBuilder EventTrace::event(EventKind kind, std::uint64_t t_us) {
  return EventBuilder(this, kind, t_us);
}

EventTrace::Buffer& EventTrace::local_buffer() {
  // Same id-keyed caching scheme as Registry::local_shard: a process-unique
  // trace id keys the cache, so a stale entry for a destroyed trace can never
  // alias a new one at the same address.
  thread_local std::uint64_t last_id = 0;  // ids start at 1
  thread_local Buffer* last_buffer = nullptr;
  if (last_id == id_) return *last_buffer;

  thread_local std::unordered_map<std::uint64_t, Buffer*> cache;
  Buffer* buffer;
  const auto it = cache.find(id_);
  if (it != cache.end()) {
    buffer = it->second;
  } else {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffer = buffers_.back().get();
    cache.emplace(id_, buffer);
  }
  last_id = id_;
  last_buffer = buffer;
  return *buffer;
}

void EventTrace::write_line(std::string line) {
  // No destination: drop immediately instead of buffering unboundedly.
  if (!has_destination_.load(std::memory_order_relaxed)) return;
  Buffer& buf = local_buffer();
  std::vector<std::string> batch;
  {
    const std::lock_guard<std::mutex> buf_lock(buf.m);
    buf.lines.push_back(std::move(line));
    if (buf.lines.size() < kFlushLines) return;
    batch.swap(buf.lines);
  }
  // The buffer lock is released before taking the global one (mutex_ is
  // never acquired under a Buffer::m, so flush() cannot deadlock with us).
  const std::lock_guard<std::mutex> lock(mutex_);
  emit_batch_locked(batch);
}

void EventTrace::emit_batch_locked(std::vector<std::string>& batch) {
  if (batch.empty()) return;
  if (file_.is_open()) {
    for (const auto& line : batch) file_ << line << '\n';
  } else if (sink_) {
    for (const auto& line : batch) sink_(line);
  } else {
    batch.clear();
    return;  // destination vanished since buffering: drop, not emitted
  }
  emitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  batch.clear();
}

EventBuilder::EventBuilder(EventTrace* trace, EventKind kind, std::uint64_t t_us)
    : trace_(trace) {
  writer_.begin_object();
  writer_.key("ev").value(to_string(kind));
  writer_.key("t").value(t_us);
  writer_.key("run").value(EventTrace::run_context());
}

EventBuilder::~EventBuilder() {
  writer_.end_object();
  trace_->write_line(writer_.take());
}

EventBuilder& EventBuilder::u64(std::string_view key, std::uint64_t v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::i64(std::string_view key, std::int64_t v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::f64(std::string_view key, double v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::str(std::string_view key, std::string_view v) {
  writer_.key(key).value(v);
  return *this;
}

EventBuilder& EventBuilder::boolean(std::string_view key, bool v) {
  writer_.key(key).value(v);
  return *this;
}

}  // namespace dophy::obs
