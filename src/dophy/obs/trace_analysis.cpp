#include "dophy/obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "dophy/common/table.hpp"
#include "dophy/obs/json.hpp"

namespace dophy::obs {

namespace {

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Nearest-rank percentile over a sorted sample vector.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

LatencyStats stats_from(std::vector<std::uint64_t>& samples) {
  LatencyStats out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  std::uint64_t sum = 0;
  for (const auto v : samples) sum += v;
  out.mean = static_cast<double>(sum) / static_cast<double>(samples.size());
  out.p50 = percentile(samples, 0.50);
  out.p95 = percentile(samples, 0.95);
  out.p99 = percentile(samples, 0.99);
  out.max = samples.back();
  return out;
}

}  // namespace

TraceSummary summarize_trace(std::istream& jsonl) {
  TraceSummary out;
  std::map<std::uint64_t, std::vector<std::uint64_t>> latency_samples;

  std::string line;
  while (std::getline(jsonl, line)) {
    if (line.empty()) continue;
    ++out.lines;
    const auto parsed = parse_flat_json_object(line);
    if (!parsed) {
      ++out.unparseable;
      continue;
    }
    const auto field = [&](const char* key) -> std::string {
      const auto it = parsed->find(key);
      return it == parsed->end() ? std::string() : it->second;
    };
    const std::string ev = field("ev");
    if (ev.empty()) {
      ++out.unparseable;
      continue;
    }
    ++out.event_counts[ev];

    if (ev == "packet_fate") {
      const std::string fate = field("fate");
      ++out.fate_counts[fate];
      if (fate == "delivered") {
        const std::uint64_t t = parse_u64(field("t"));
        const std::uint64_t created = parse_u64(field("created"));
        const std::uint64_t hops = parse_u64(field("hops"));
        const std::uint64_t latency = t >= created ? t - created : 0;
        latency_samples[hops].push_back(latency);
        latency_samples[0].push_back(latency);  // key 0 = all deliveries
      }
      continue;
    }

    if (ev == "span") {
      const std::string op = field("op");
      if (op == "b") ++out.spans_begun;
      if (op == "e") ++out.spans_ended;
      if (op == "x" && field("kind") == "hop") {
        const auto link = std::make_pair(parse_u64(field("from")), parse_u64(field("to")));
        LinkRetryStats& stats = out.link_retries[link];
        const std::uint64_t attempts = parse_u64(field("attempts"));
        ++stats.exchanges;
        if (field("ok") == "false") ++stats.failures;
        stats.attempts_sum += attempts;
        stats.attempts_max =
            std::max(stats.attempts_max, static_cast<std::uint32_t>(attempts));
      }
      continue;
    }
  }

  for (auto& [hops, samples] : latency_samples) {
    out.latency_by_hops[hops] = stats_from(samples);
  }
  return out;
}

void print_trace_summary(std::ostream& os, const TraceSummary& summary,
                         std::size_t max_links) {
  os << "trace: " << summary.lines << " lines";
  if (summary.unparseable != 0) os << " (" << summary.unparseable << " unparseable)";
  os << "\n\n";

  {
    dophy::common::Table table({"event", "count"});
    for (const auto& [ev, count] : summary.event_counts) table.row().cell(ev).cell(count);
    table.print(os, "Events");
    os << "\n";
  }

  if (!summary.fate_counts.empty()) {
    std::uint64_t total = 0;
    for (const auto& [fate, count] : summary.fate_counts) total += count;
    dophy::common::Table table({"fate", "count", "share"});
    for (const auto& [fate, count] : summary.fate_counts) {
      table.row().cell(fate).cell(count).cell(
          total == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(total), 4);
    }
    table.print(os, "Packet fates (drop causes)");
    os << "\n";
  }

  if (!summary.latency_by_hops.empty()) {
    dophy::common::Table table(
        {"hops", "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"});
    for (const auto& [hops, stats] : summary.latency_by_hops) {
      table.row()
          .cell(hops == 0 ? std::string("all") : std::to_string(hops))
          .cell(stats.count)
          .cell(stats.mean, 1)
          .cell(stats.p50)
          .cell(stats.p95)
          .cell(stats.p99)
          .cell(stats.max);
    }
    table.print(os, "End-to-end latency by hop count (delivered)");
    os << "\n";
  }

  if (!summary.link_retries.empty()) {
    // Busiest links first.
    std::vector<std::pair<std::pair<std::uint64_t, std::uint64_t>, LinkRetryStats>> links(
        summary.link_retries.begin(), summary.link_retries.end());
    std::sort(links.begin(), links.end(), [](const auto& a, const auto& b) {
      return a.second.exchanges > b.second.exchanges;
    });
    if (links.size() > max_links) links.resize(max_links);
    dophy::common::Table table(
        {"link", "exchanges", "failures", "mean_attempts", "max_attempts"});
    for (const auto& [link, stats] : links) {
      table.row()
          .cell(std::to_string(link.first) + "->" + std::to_string(link.second))
          .cell(stats.exchanges)
          .cell(stats.failures)
          .cell(stats.mean_attempts(), 2)
          .cell(stats.attempts_max);
    }
    table.print(os, "Per-link ARQ retries (top " + std::to_string(links.size()) + ")");
    os << "\n";
  }

  if (summary.spans_begun != 0 || summary.spans_ended != 0) {
    os << "spans: " << summary.spans_begun << " begun, " << summary.spans_ended
       << " ended\n";
  }
}

namespace {

/// Flattens the sections diff_reports compares out of one parsed report.
struct ReportView {
  std::map<std::string, double> counters;
  std::map<std::string, double> phases;
  std::map<std::string, double> histogram_totals;
};

ReportView view_of(const JsonValue& root) {
  ReportView out;
  if (const auto* phases = root.find("phase_seconds")) {
    for (const auto& [name, v] : phases->object) {
      if (v.is_number()) out.phases[name] = v.number;
    }
  }
  if (const auto* metrics = root.find("metrics")) {
    if (const auto* counters = metrics->find("counters")) {
      for (const auto& [name, v] : counters->object) {
        if (v.is_number()) out.counters[name] = v.number;
      }
    }
    if (const auto* histograms = metrics->find("histograms")) {
      for (const auto& [name, v] : histograms->object) {
        if (const auto* total = v.find("total")) {
          if (total->is_number()) out.histogram_totals[name] = total->number;
        }
      }
    }
  }
  return out;
}

void diff_section(ReportDiff& diff, const std::string& section,
                  const std::map<std::string, double>& before,
                  const std::map<std::string, double>& after,
                  const ReportDiffOptions& opts) {
  std::map<std::string, std::pair<double, double>> merged;
  for (const auto& [name, v] : before) merged[name].first = v;
  for (const auto& [name, v] : after) merged[name].second = v;
  for (const auto& [name, values] : merged) {
    const auto [a, b] = values;
    if (std::abs(a) < opts.min_magnitude && std::abs(b) < opts.min_magnitude) continue;
    ReportDiff::Row row;
    row.section = section;
    row.name = name;
    row.before = a;
    row.after = b;
    row.change_pct = a == 0.0 ? 0.0 : (b - a) / a * 100.0;
    // A metric appearing or vanishing entirely is always worth flagging.
    row.exceeded = a == 0.0 || b == 0.0 ? true : std::abs(row.change_pct) > opts.threshold_pct;
    diff.any_exceeded = diff.any_exceeded || row.exceeded;
    diff.rows.push_back(std::move(row));
  }
}

}  // namespace

ReportDiff diff_reports(const std::string& before_json, const std::string& after_json,
                        const ReportDiffOptions& opts) {
  ReportDiff diff;
  const auto before = parse_json(before_json);
  if (!before) {
    diff.error = "cannot parse first report";
    return diff;
  }
  const auto after = parse_json(after_json);
  if (!after) {
    diff.error = "cannot parse second report";
    return diff;
  }
  const ReportView a = view_of(*before);
  const ReportView b = view_of(*after);
  diff_section(diff, "counter", a.counters, b.counters, opts);
  diff_section(diff, "phase_s", a.phases, b.phases, opts);
  diff_section(diff, "histogram_total", a.histogram_totals, b.histogram_totals, opts);
  return diff;
}

void print_report_diff(std::ostream& os, const ReportDiff& diff) {
  if (!diff.error.empty()) {
    os << "error: " << diff.error << "\n";
    return;
  }
  dophy::common::Table table({"section", "metric", "before", "after", "change%", "flag"});
  for (const auto& row : diff.rows) {
    table.row()
        .cell(row.section)
        .cell(row.name)
        .cell(row.before, 4)
        .cell(row.after, 4)
        .cell(row.change_pct, 2)
        .cell(row.exceeded ? "!" : "");
  }
  table.print(os, "Run-report diff");
  os << (diff.any_exceeded ? "threshold exceeded\n" : "within threshold\n");
}

}  // namespace dophy::obs
