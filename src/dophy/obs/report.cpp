#include "dophy/obs/report.hpp"

#include <fstream>

#include "dophy/obs/json.hpp"

namespace dophy::obs {

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(std::uint64_t{1});
  w.key("bench").value(bench);
  w.key("title").value(title);
  w.key("git").value(git_describe());
  w.key("config").begin_object();
  for (const auto& [key, value] : config) w.key(key).value(value);
  w.end_object();
  w.key("tables").begin_array();
  for (const TableSection& table : tables) {
    w.begin_object();
    w.key("title").value(table.title);
    w.key("columns").begin_array();
    for (const auto& c : table.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : table.rows) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("phase_seconds").begin_object();
  for (const auto& [name, s] : phase_seconds) w.key(name).value(s);
  w.end_object();
  // metrics.to_json() is itself a JSON object; splice it in verbatim.
  w.key("metrics");
  std::string out = w.take();
  out += metrics.to_json();
  out += '}';
  return out;
}

std::string_view git_describe() noexcept {
#ifdef DOPHY_GIT_DESCRIBE
  return DOPHY_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

bool write_report_file(const RunReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) return false;
  file << report.to_json() << '\n';
  return file.good();
}

}  // namespace dophy::obs
