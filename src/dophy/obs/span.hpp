#pragma once

// Causal lifecycle spans layered on the JSONL event trace.  A span follows
// one logical object (a data packet, a sink decode, a model window) through
// time; spans reference each other by id, so a trace viewer — or
// tools/dophy_trace — can reconstruct the causal chain packet -> hop
// intervals -> decode -> model update.
//
// Spans are JSONL records with EventKind::kSpan ("ev":"span") and an "op"
// field:
//
//   {"ev":"span","op":"b","id":7,"kind":"pkt",...}          begin
//   {"ev":"span","op":"e","id":7,...}                       end
//   {"ev":"span","op":"i","id":9,"kind":"decode",...}       instant
//   {"ev":"span","op":"x","id":8,"kind":"hop","dur":512,...} completed interval
//   {"ev":"span","op":"l","id":7,"to":9}                    causal link
//
// All timestamps are simulation microseconds; "run" carries the trial seed
// like every other trace line.  SpanId 0 means "no span" — call sites keep
// it in packets and results so downstream code can link without caring
// whether tracing is live.
//
// Cost model: `SpanTrace::global().enabled()` is a single relaxed atomic
// load; every call site guards with it, so disabled tracing costs one load
// plus a branch (the PR 3 perf gate measures this path).  Annotation
// callbacks run only when a record is actually built:
//
//   auto& spans = obs::SpanTrace::global();
//   if (spans.enabled()) {
//     pkt.span = spans.begin("pkt", now, [&](obs::EventBuilder& b) {
//       b.u64("origin", origin).u64("seq", seq);
//     });
//   }

#include <atomic>
#include <cstdint>
#include <string_view>
#include <utility>

#include "dophy/obs/trace.hpp"

namespace dophy::obs {

/// Process-unique span identifier; 0 means "no span".
using SpanId = std::uint64_t;

class SpanTrace {
 public:
  /// Process-wide span trace used by the sim/tomo instrumentation.
  static SpanTrace& global();

  /// The one check call sites make before doing any span work.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Enabling spans also enables EventKind::kSpan on the global EventTrace
  /// so records are not masked away.
  void set_enabled(bool on) noexcept;

  /// Opens a span of `kind` at `t_us`; returns its id for end()/link().
  template <typename Fn>
  SpanId begin(std::string_view kind, std::uint64_t t_us, Fn&& annotate) {
    const SpanId id = next_id();
    {
      auto b = record(t_us);
      b.str("op", "b").u64("id", id).str("kind", kind);
      std::forward<Fn>(annotate)(b);
    }
    return id;
  }
  SpanId begin(std::string_view kind, std::uint64_t t_us) {
    return begin(kind, t_us, [](EventBuilder&) {});
  }

  /// Closes a span previously opened with begin().  No-op for id 0.
  template <typename Fn>
  void end(SpanId id, std::uint64_t t_us, Fn&& annotate) {
    if (id == 0) return;
    auto b = record(t_us);
    b.str("op", "e").u64("id", id);
    std::forward<Fn>(annotate)(b);
  }
  void end(SpanId id, std::uint64_t t_us) {
    end(id, t_us, [](EventBuilder&) {});
  }

  /// A zero-duration span (a decode, a model publish): one record, still
  /// linkable by id.
  template <typename Fn>
  SpanId instant(std::string_view kind, std::uint64_t t_us, Fn&& annotate) {
    const SpanId id = next_id();
    {
      auto b = record(t_us);
      b.str("op", "i").u64("id", id).str("kind", kind);
      std::forward<Fn>(annotate)(b);
    }
    return id;
  }
  SpanId instant(std::string_view kind, std::uint64_t t_us) {
    return instant(kind, t_us, [](EventBuilder&) {});
  }

  /// A completed interval [start_us, start_us + dur_us] recorded after the
  /// fact (per-hop ARQ exchanges, sweep cells).
  template <typename Fn>
  SpanId interval(std::string_view kind, std::uint64_t start_us, std::uint64_t dur_us,
                  Fn&& annotate) {
    const SpanId id = next_id();
    {
      auto b = record(start_us);
      b.str("op", "x").u64("id", id).str("kind", kind).u64("dur", dur_us);
      std::forward<Fn>(annotate)(b);
    }
    return id;
  }
  SpanId interval(std::string_view kind, std::uint64_t start_us, std::uint64_t dur_us) {
    return interval(kind, start_us, dur_us, [](EventBuilder&) {});
  }

  /// Declares a causal edge from span `from` to span `to` at `t_us`.
  /// No-op when either end is 0.
  void link(SpanId from, SpanId to, std::uint64_t t_us);

 private:
  [[nodiscard]] SpanId next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A bare kSpan record; callers append "op"/"id" before annotations.
  /// Returned by value — guaranteed elision, EventBuilder never moves.
  [[nodiscard]] EventBuilder record(std::uint64_t t_us);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace dophy::obs
