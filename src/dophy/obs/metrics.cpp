#include "dophy/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "dophy/obs/json.hpp"

namespace dophy::obs {

// --- snapshot ---------------------------------------------------------------

double HistogramSnapshot::quantile(double q) const noexcept {
  if (total == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 picks the first sample.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket i spans (lo, hi]; interpolate by the rank's position in it.
    const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double hi = i < bounds.size() ? static_cast<double>(bounds[i])
                                        : 2.0 * static_cast<double>(bounds.back());
    const double frac = (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(bounds.back());  // unreachable: cumulative == total
}

std::vector<std::uint64_t> log2_bounds(std::uint32_t buckets) {
  if (buckets == 0 || buckets > 64) {
    throw std::invalid_argument("obs::log2_bounds: buckets must be in [1, 64]");
  }
  std::vector<std::uint64_t> bounds(buckets);
  for (std::uint32_t i = 0; i < buckets; ++i) bounds[i] = std::uint64_t{1} << i;
  return bounds;
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const auto it = base.counters.find(name);
    if (it != base.counters.end()) value -= std::min(value, it->second);
  }
  for (auto& [name, hist] : out.histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end() || it->second.bounds != hist.bounds) continue;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      hist.counts[i] -= std::min(hist.counts[i], it->second.counts[i]);
    }
    hist.total -= std::min(hist.total, it->second.total);
    hist.sum -= std::min(hist.sum, it->second.sum);
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, hist] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : hist.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : hist.counts) w.value(c);
    w.end_array();
    w.key("total").value(hist.total);
    w.key("sum").value(hist.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

// --- shard ------------------------------------------------------------------

std::atomic<std::uint64_t>& Registry::Shard::cell(std::uint32_t slot) {
  const std::size_t chunk_idx = slot / kChunkSlots;
  auto* chunk = chunks[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // Single writer per shard: no CAS needed, just publish for the reader.
    chunk = new std::atomic<std::uint64_t>[kChunkSlots]();
    chunks[chunk_idx].store(chunk, std::memory_order_release);
  }
  return chunk[slot % kChunkSlots];
}

std::uint64_t Registry::Shard::read(std::uint32_t slot) const noexcept {
  const auto* chunk = chunks[slot / kChunkSlots].load(std::memory_order_acquire);
  if (chunk == nullptr) return 0;
  return chunk[slot % kChunkSlots].load(std::memory_order_relaxed);
}

void Registry::Shard::zero() noexcept {
  for (auto& slot : chunks) {
    auto* chunk = slot.load(std::memory_order_acquire);
    if (chunk == nullptr) continue;
    for (std::size_t i = 0; i < kChunkSlots; ++i) chunk[i].store(0, std::memory_order_relaxed);
  }
}

Registry::Shard::~Shard() {
  for (auto& slot : chunks) delete[] slot.load(std::memory_order_acquire);
}

// --- registry ---------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_registry_ids{1};
}  // namespace

Registry::Registry() : id_(g_registry_ids.fetch_add(1, std::memory_order_relaxed)) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Shard& Registry::local_shard() {
  // Caches are keyed by process-unique registry id rather than `this`, so a
  // stale entry for a destroyed registry can never alias a new one at the
  // same address.  The single-entry cache keeps the common case (every hot
  // call site hits the global registry) to one integer compare; the map only
  // serves tests that juggle several registries on one thread.
  thread_local std::uint64_t last_id = 0;  // ids start at 1
  thread_local Shard* last_shard = nullptr;
  if (last_id == id_) return *last_shard;

  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  Shard* shard;
  const auto it = cache.find(id_);
  if (it != cache.end()) {
    shard = it->second;
  } else {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
    cache.emplace(id_, shard);
  }
  last_id = id_;
  last_shard = shard;
  return *shard;
}

std::uint32_t Registry::intern(std::string_view name, MetricKind kind, std::uint32_t width,
                               std::vector<std::uint64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const Def& def = defs_[it->second];
    if (def.kind != kind) {
      throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                             "' re-registered as a different kind");
    }
    return it->second;
  }
  Def def;
  def.name = std::string(name);
  def.kind = kind;
  def.width = width;
  def.bounds = std::move(bounds);
  if (kind == MetricKind::kGauge) {
    def.slot = static_cast<std::uint32_t>(gauges_.size());
    gauges_.emplace_back(0.0);
  } else {
    if (next_slot_ + width > Shard::kChunkSlots * Shard::kMaxChunks) {
      throw std::logic_error("obs::Registry: slot space exhausted");
    }
    // A metric never straddles a chunk boundary, so histogram buckets stay
    // within one allocation.
    const std::uint32_t room = Shard::kChunkSlots - (next_slot_ % Shard::kChunkSlots);
    if (width > room) next_slot_ += room;
    def.slot = next_slot_;
    next_slot_ += width;
  }
  defs_.push_back(std::move(def));
  const auto idx = static_cast<std::uint32_t>(defs_.size() - 1);
  by_name_.emplace(std::string(name), idx);
  return idx;
}

Counter Registry::counter(std::string_view name) {
  const std::uint32_t idx = intern(name, MetricKind::kCounter, 1, {});
  const std::lock_guard<std::mutex> lock(mutex_);
  return Counter(this, defs_[idx].slot);
}

Gauge Registry::gauge(std::string_view name) {
  const std::uint32_t idx = intern(name, MetricKind::kGauge, 0, {});
  const std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(&gauges_[defs_[idx].slot]);
}

HistogramHandle Registry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument("obs::Registry::histogram: bounds must be strictly increasing");
  }
  // Buckets + overflow + value-sum.
  const auto width = static_cast<std::uint32_t>(bounds.size() + 2);
  const std::uint32_t idx = intern(name, MetricKind::kHistogram, width, std::move(bounds));
  const std::lock_guard<std::mutex> lock(mutex_);
  return HistogramHandle(this, defs_[idx].slot, &defs_[idx].bounds);
}

LatencyHistogram Registry::latency_histogram(std::string_view name, std::uint32_t buckets) {
  auto bounds = log2_bounds(buckets);
  const auto width = static_cast<std::uint32_t>(bounds.size() + 2);
  const std::uint32_t idx = intern(name, MetricKind::kHistogram, width, std::move(bounds));
  const std::lock_guard<std::mutex> lock(mutex_);
  if (defs_[idx].bounds != log2_bounds(buckets)) {
    throw std::logic_error("obs::Registry: latency histogram '" + std::string(name) +
                           "' re-registered with different bucket count");
  }
  return LatencyHistogram(this, defs_[idx].slot,
                          static_cast<std::uint32_t>(defs_[idx].bounds.size()));
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  auto sum_slot = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->read(slot);
    return total;
  };
  for (const Def& def : defs_) {
    switch (def.kind) {
      case MetricKind::kCounter:
        out.counters.emplace(def.name, sum_slot(def.slot));
        break;
      case MetricKind::kGauge:
        out.gauges.emplace(def.name, gauges_[def.slot].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = def.bounds;
        h.counts.resize(def.bounds.size() + 1);
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          h.counts[i] = sum_slot(def.slot + static_cast<std::uint32_t>(i));
          h.total += h.counts[i];
        }
        h.sum = sum_slot(def.slot + def.width - 1);
        out.histograms.emplace(def.name, std::move(h));
        break;
      }
    }
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) shard->zero();
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

// --- handles ----------------------------------------------------------------

void Counter::inc(std::uint64_t n) const noexcept {
  if (reg_ == nullptr || !reg_->metrics_enabled()) return;
  reg_->local_shard().cell(slot_).fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double v) const noexcept {
  if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
}

void HistogramHandle::observe(std::uint64_t value) const noexcept {
  if (reg_ == nullptr || !reg_->metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_->begin(), bounds_->end(), value);
  const auto bucket = static_cast<std::uint32_t>(it - bounds_->begin());
  Registry::Shard& shard = reg_->local_shard();
  shard.cell(slot_ + bucket).fetch_add(1, std::memory_order_relaxed);
  shard.cell(slot_ + static_cast<std::uint32_t>(bounds_->size()) + 1)
      .fetch_add(value, std::memory_order_relaxed);
}

void LatencyHistogram::observe(std::uint64_t value) const noexcept {
  if (reg_ == nullptr || !reg_->metrics_enabled()) return;
  // Matches lower_bound over {1,2,4,...}: value v>1 lands in the bucket whose
  // bound is the smallest power of two >= v, i.e. bit_width(v-1); values above
  // the last bound fall into the overflow bucket `buckets_`.
  const std::uint32_t bucket =
      value <= 1 ? 0
                 : std::min(static_cast<std::uint32_t>(std::bit_width(value - 1)), buckets_);
  Registry::Shard& shard = reg_->local_shard();
  shard.cell(slot_ + bucket).fetch_add(1, std::memory_order_relaxed);
  shard.cell(slot_ + buckets_ + 1).fetch_add(value, std::memory_order_relaxed);
}

}  // namespace dophy::obs
