#pragma once

// Machine-readable run reports.  Every bench binary can emit one of these
// (--metrics-json) so scripts/run_all_benches.sh and CI collect a
// schema-stable record per run: what was run (bench, git revision, config),
// what came out (result tables), where the wall time went (phase timings),
// and the full metrics snapshot.
//
// Schema (version 1, keys always present):
//   {
//     "schema_version": 1,
//     "bench":   "<binary name>",
//     "title":   "<last table title>",
//     "git":     "<git describe at configure time>",
//     "config":  { "<key>": "<value>", ... },
//     "tables":  [ {"title": ..., "columns": [...], "rows": [[...], ...]} ],
//     "phase_seconds": { "<phase>": <seconds>, ... },
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dophy/obs/metrics.hpp"

namespace dophy::obs {

struct TableSection {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct RunReport {
  std::string bench;
  std::string title;
  std::map<std::string, std::string> config;
  std::vector<TableSection> tables;
  std::map<std::string, double> phase_seconds;
  MetricsSnapshot metrics;

  [[nodiscard]] std::string to_json() const;
};

/// Revision the build was configured from (git describe --always --dirty),
/// or "unknown" outside a git checkout.
[[nodiscard]] std::string_view git_describe() noexcept;

/// Writes `report.to_json()` to `path`; returns false on I/O failure.
bool write_report_file(const RunReport& report, const std::string& path);

}  // namespace dophy::obs
