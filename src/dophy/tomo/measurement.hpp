#pragma once

// Versioned model sets and the per-node model store.
//
// Every hop of a packet must encode with bit-identical models, so Dophy
// stamps the origin's installed version into the packet and disseminates
// model updates sink-outward (forwarders sit closer to the sink than the
// origin, so they always hold the stamped version by the time the packet
// reaches them).

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dophy/coding/freq_model.hpp"
#include "dophy/net/types.hpp"

namespace dophy::tomo {

/// The pair of static models one version comprises: hop receiver ids and
/// aggregated retransmission-count symbols.
struct ModelSet {
  std::uint8_t version = 0;
  dophy::coding::StaticModel id_model;
  dophy::coding::StaticModel retx_model;

  ModelSet(std::uint8_t version, dophy::coding::StaticModel id_model,
           dophy::coding::StaticModel retx_model);

  /// Uniform bootstrap models (version 0).
  static ModelSet bootstrap(std::size_t node_count, std::uint32_t retx_alphabet);

  /// Wire form for dissemination; `wire_size()` is the byte cost charged to
  /// the flood.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static ModelSet deserialize(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Per-node store of installed model versions (bounded history).
class ModelStore {
 public:
  explicit ModelStore(std::size_t capacity = 8);

  void install(ModelSet set);

  /// Latest installed version (the one new packets get stamped with).
  [[nodiscard]] std::uint8_t current_version() const;

  /// Lookup by version; nullptr when the store never had it / evicted it.
  [[nodiscard]] const ModelSet* find(std::uint8_t version) const;

  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }

 private:
  std::size_t capacity_;
  // Insertion-ordered; version numbers are monotone so a map keyed by the
  // install counter keeps eviction FIFO even across uint8 wraparound.
  std::map<std::uint64_t, ModelSet> sets_;
  std::uint64_t install_counter_ = 0;
};

}  // namespace dophy::tomo
