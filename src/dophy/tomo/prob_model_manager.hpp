#pragma once

// Sink-side probability-model maintenance — Dophy's second optimization.
//
// The sink tallies the symbols it decodes, and periodically republishes
// static models so in-packet encoding tracks the network's real symbol
// distribution.  Publishing is not free: the model floods to every node, so
// the adaptive policy triggers an update only when the projected coding
// savings (symbol rate x KL(empirical || deployed) over the horizon) exceed
// the dissemination cost.

#include <cstdint>
#include <functional>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/measurement.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

struct ModelUpdateConfig {
  enum class Policy { kStatic, kPeriodic, kAdaptive };
  Policy policy = Policy::kPeriodic;

  double check_interval_s = 120.0;  ///< tick cadence (and period for kPeriodic)
  std::uint64_t min_hop_samples = 300;  ///< don't publish from thin data
  double adaptive_horizon_s = 1800.0;   ///< savings amortization window
  double smoothing = 1.0;               ///< add-k prior when building models
  bool update_id_model = true;          ///< also learn the hop-id distribution
  /// Quantization total for published models.  Coarser (smaller) models cost
  /// a few hundredths of a bit per symbol but flood much cheaper.
  std::uint32_t model_precision = 4096;
};

struct ModelManagerStats {
  std::uint64_t updates_published = 0;
  std::uint64_t ticks = 0;
  std::uint64_t hops_observed = 0;
  double last_kl_bits = 0.0;       ///< per-hop KL at the last tick
  double last_model_bytes = 0.0;   ///< wire size of the last published set
};

class ProbModelManager {
 public:
  /// `publish` receives each new ModelSet and is responsible for installing
  /// it at the sink and flooding it (the pipeline wires this to
  /// Network::flood_from_sink + DophyInstrumentation::install).
  using PublishFn = std::function<void(const ModelSet&)>;

  ProbModelManager(const ModelUpdateConfig& config, std::size_t node_count,
                   const SymbolMapper& mapper, PublishFn publish);

  /// Feeds one decoded packet path (tally id + retx symbols).
  void observe(const DecodedPath& path);

  /// Periodic tick; decides whether to publish under the configured policy.
  void on_tick(dophy::net::SimTime now);

  /// Unconditionally builds and publishes a model set from current tallies.
  void publish_now();

  /// Per-hop KL divergence (bits) between the empirical distribution since
  /// the last publish and the currently deployed models.
  [[nodiscard]] double current_kl_bits() const;

  [[nodiscard]] const ModelManagerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint8_t deployed_version() const noexcept { return version_; }

 private:
  void reset_window();
  [[nodiscard]] ModelSet build_set(std::uint8_t version) const;

  ModelUpdateConfig config_;
  std::size_t node_count_;
  SymbolMapper mapper_;
  PublishFn publish_;

  std::vector<std::uint64_t> id_counts_;
  std::vector<std::uint64_t> retx_counts_;
  std::uint64_t window_hops_ = 0;
  dophy::net::SimTime window_start_ = 0;
  dophy::net::SimTime last_tick_ = 0;
  /// Open "model_window" span covering the tally window feeding the next
  /// publish (obs::SpanTrace id; 0 when tracing is off or nothing observed).
  std::uint64_t window_span_ = 0;

  std::uint8_t version_ = 0;
  std::vector<std::uint64_t> deployed_id_counts_;    ///< counts behind deployed models
  std::vector<std::uint64_t> deployed_retx_counts_;
  ModelManagerStats stats_;
};

}  // namespace dophy::tomo
