#include "dophy/tomo/dophy_encoder.hpp"

#include <stdexcept>

#include "dophy/coding/arith.hpp"

namespace dophy::tomo {

using dophy::coding::RangeCoderState;
using dophy::coding::RangeEncoder;
using dophy::net::MeasurementBlob;
using dophy::net::NodeId;
using dophy::net::Packet;

namespace {

void state_into_blob(MeasurementBlob& blob, const RangeCoderState& state) {
  const auto bytes = state.serialize();
  static_assert(RangeCoderState::kSerializedSize <= sizeof(MeasurementBlob::state));
  std::copy(bytes.begin(), bytes.end(), blob.state.begin());
  blob.state_size = static_cast<std::uint8_t>(bytes.size());
}

RangeCoderState state_from_blob(const MeasurementBlob& blob) {
  if (blob.state_size != RangeCoderState::kSerializedSize) {
    throw std::runtime_error("Dophy: packet carries no coder state");
  }
  return RangeCoderState::deserialize(
      std::span<const std::uint8_t>(blob.state.data(), blob.state_size));
}

}  // namespace

DophyInstrumentation::DophyInstrumentation(std::size_t node_count, const SymbolMapper& mapper,
                                           std::size_t max_wire_bytes)
    : mapper_(mapper), max_wire_bytes_(max_wire_bytes) {
  if (node_count < 2) throw std::invalid_argument("DophyInstrumentation: need >= 2 nodes");
  const ModelSet boot = ModelSet::bootstrap(node_count, mapper_.alphabet_size());
  stores_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ModelStore store;
    store.install(boot);
    stores_.push_back(std::move(store));
  }
}

void DophyInstrumentation::on_origin(Packet& packet, NodeId origin,
                                     dophy::net::SimTime /*now*/) {
  const ModelStore& store = stores_.at(origin);
  packet.blob.model_version = store.current_version();
  packet.blob.bytes.clear();
  packet.blob.logical_bits = 0;
  state_into_blob(packet.blob, RangeCoderState{});  // fresh registers
  ++stats_.packets_originated;
}

void DophyInstrumentation::on_hop_received(Packet& packet, NodeId receiver, NodeId /*sender*/,
                                           std::uint32_t attempts,
                                           dophy::net::SimTime /*now*/) {
  const ModelStore& store = stores_.at(receiver);
  if (packet.blob.truncated ||
      (max_wire_bytes_ > 0 && packet.blob.wire_bytes() + 2 > max_wire_bytes_)) {
    // Budget exhausted: stop appending; the blob is poisoned for decoding
    // (the symbol stream no longer matches the path) and marked as such.
    packet.blob.truncated = true;
    ++stats_.truncated_hops;
    return;
  }
  const ModelSet* models = store.find(packet.blob.model_version);
  if (models == nullptr) {
    // The stamped version never reached this forwarder (possible under slow
    // dissemination).  Continuing with any other model would desynchronize
    // the stream, and silently skipping would let the sink decode a path
    // with this hop missing — so poison the blob and let the sink drop it.
    packet.blob.truncated = true;
    ++stats_.missing_model_hops;
    return;
  }

  // The byte-oriented coder appends to the blob's byte vector in place — no
  // stream replay, the forwarder only touches bytes it adds.
  const std::size_t bytes_before = packet.blob.bytes.size();
  RangeEncoder enc(packet.blob.bytes, state_from_blob(packet.blob));

  // Bit attribution below is approximate (the coder's registers buffer
  // fractional symbols across byte boundaries) but unbiased over many hops.
  enc.encode(models->id_model, receiver);
  const std::size_t bytes_after_id = packet.blob.bytes.size();
  enc.encode(models->retx_model, mapper_.to_symbol(attempts));
  stats_.id_bits_appended += (bytes_after_id - bytes_before) * 8;
  stats_.retx_bits_appended += (packet.blob.bytes.size() - bytes_after_id) * 8;

  if (receiver == dophy::net::kSinkId) {
    enc.finish();
    packet.blob.state_size = 0;  // trailer squeezed out at finalization
  } else {
    state_into_blob(packet.blob, enc.suspend());
  }

  const std::size_t bits_after = packet.blob.bytes.size() * 8;
  packet.blob.logical_bits = static_cast<std::uint32_t>(bits_after);

  ++stats_.hops_encoded;
  stats_.total_bits_appended += bits_after - bytes_before * 8;
  stats_.bits_per_hop.add(bits_after - bytes_before * 8);
}

void DophyInstrumentation::install(NodeId node, const ModelSet& set) {
  stores_.at(node).install(set);
}

const ModelStore& DophyInstrumentation::store(NodeId node) const { return stores_.at(node); }

}  // namespace dophy::tomo
