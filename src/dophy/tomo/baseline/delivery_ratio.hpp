#pragma once

// Traditional baseline 1 — delivery-ratio tree tomography (MINC-flavoured).
//
// Assumes a *static* collection tree.  Every node is an origin, so the
// end-to-end delivery ratio of node v factors as D_v = prod of packet-level
// link success along v's path; with the tree assumption the per-link success
// is simply the ratio D_v / D_parent(v).  Fast and exact on a truly static
// tree with no retransmissions — and that is precisely what dynamic WSNs
// with ARQ are not.

#include <unordered_map>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/tomo/baseline/inputs.hpp"

namespace dophy::tomo::baseline {

struct DeliveryRatioConfig {
  std::uint32_t max_attempts = 8;     ///< MAC budget used for the inversion
  std::uint64_t min_generated = 10;   ///< ignore origins with fewer packets
};

class DeliveryRatioTomography {
 public:
  explicit DeliveryRatioTomography(const DeliveryRatioConfig& config) : config_(config) {}

  /// Estimates per-attempt loss for each tree link; the tree is taken from
  /// each sample's first hop (origin -> parent).
  [[nodiscard]] std::unordered_map<dophy::net::LinkKey, double, dophy::net::LinkKeyHash>
  estimate(const std::vector<PathSample>& samples) const;

 private:
  DeliveryRatioConfig config_;
};

}  // namespace dophy::tomo::baseline
