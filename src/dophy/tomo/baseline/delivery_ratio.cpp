#include "dophy/tomo/baseline/delivery_ratio.hpp"

#include <algorithm>
#include <cmath>

namespace dophy::tomo::baseline {

using dophy::net::kInvalidNode;
using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::LinkKeyHash;
using dophy::net::NodeId;

double packet_success_to_attempt_loss(double packet_success, std::uint32_t max_attempts) {
  const double fail = std::clamp(1.0 - packet_success, 0.0, 1.0);
  if (max_attempts <= 1) return fail;
  return std::pow(fail, 1.0 / static_cast<double>(max_attempts));
}

std::vector<NodeId> chase_parents(const std::vector<NodeId>& parent_of, NodeId origin,
                                  std::uint16_t max_hops) {
  std::vector<NodeId> path;
  NodeId cur = origin;
  for (std::uint16_t i = 0; i < max_hops; ++i) {
    if (cur >= parent_of.size()) return {};
    const NodeId next = parent_of[cur];
    if (next == kInvalidNode) return {};
    path.push_back(next);
    if (next == kSinkId) return path;
    cur = next;
  }
  return {};  // loop or overlong chain
}

std::unordered_map<LinkKey, double, LinkKeyHash> DeliveryRatioTomography::estimate(
    const std::vector<PathSample>& samples) const {
  // Per-node delivery ratio and parent pointer from the samples.
  std::unordered_map<NodeId, double> delivery;
  std::unordered_map<NodeId, NodeId> parent;
  for (const PathSample& s : samples) {
    if (s.generated < config_.min_generated || s.path.empty()) continue;
    delivery[s.origin] =
        static_cast<double>(s.delivered) / static_cast<double>(s.generated);
    parent[s.origin] = s.path.front();
  }
  delivery[kSinkId] = 1.0;

  std::unordered_map<LinkKey, double, LinkKeyHash> out;
  for (const auto& [node, par] : parent) {
    const auto it_child = delivery.find(node);
    const auto it_parent = delivery.find(par);
    if (it_child == delivery.end() || it_parent == delivery.end()) continue;
    if (it_parent->second <= 1e-6) continue;
    const double s_pkt = std::clamp(it_child->second / it_parent->second, 0.0, 1.0);
    out[LinkKey{node, par}] = packet_success_to_attempt_loss(s_pkt, config_.max_attempts);
  }
  return out;
}

}  // namespace dophy::tomo::baseline
