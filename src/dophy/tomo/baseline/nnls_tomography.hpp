#pragma once

// Traditional baseline 2 — path-based linear inversion.
//
// Takes the log of the multiplicative path model: for origin o with assumed
// path P(o),   -ln D_o = sum_{l in P(o)} x_l  with x_l = -ln(s_l) >= 0.
// Solves the non-negative least-squares system with projected gradient
// descent.  Handles multiple windows/paths per origin (so it is strictly
// more general than the tree-ratio method) but still consumes only
// end-to-end ratios and snapshot paths.

#include <unordered_map>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/tomo/baseline/inputs.hpp"

namespace dophy::tomo::baseline {

struct NnlsConfig {
  std::uint32_t max_attempts = 8;
  std::uint64_t min_generated = 10;
  std::uint32_t max_iterations = 2000;
  double tolerance = 1e-10;  ///< stop when the objective improves less
  double delivery_floor = 1e-4;  ///< clamp D to avoid ln(0)
};

class NnlsPathTomography {
 public:
  explicit NnlsPathTomography(const NnlsConfig& config) : config_(config) {}

  /// Per-attempt loss estimates for every link appearing in some sample
  /// path.  Each PathSample is one equation (weighted by generated count).
  [[nodiscard]] std::unordered_map<dophy::net::LinkKey, double, dophy::net::LinkKeyHash>
  estimate(const std::vector<PathSample>& samples) const;

 private:
  NnlsConfig config_;
};

}  // namespace dophy::tomo::baseline
