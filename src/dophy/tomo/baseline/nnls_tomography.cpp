#include "dophy/tomo/baseline/nnls_tomography.hpp"

#include <algorithm>
#include <cmath>

namespace dophy::tomo::baseline {

using dophy::net::LinkKey;
using dophy::net::LinkKeyHash;
using dophy::net::NodeId;

std::unordered_map<LinkKey, double, LinkKeyHash> NnlsPathTomography::estimate(
    const std::vector<PathSample>& samples) const {
  // Index the links appearing in any usable sample.
  std::unordered_map<LinkKey, std::size_t, LinkKeyHash> index;
  struct Equation {
    std::vector<std::size_t> links;
    double b = 0.0;       ///< -ln D
    double weight = 1.0;  ///< packet count
  };
  std::vector<Equation> equations;

  for (const PathSample& s : samples) {
    if (s.generated < config_.min_generated || s.path.empty()) continue;
    Equation eq;
    NodeId prev = s.origin;
    for (const NodeId hop : s.path) {
      const LinkKey key{prev, hop};
      const auto [it, inserted] = index.emplace(key, index.size());
      eq.links.push_back(it->second);
      prev = hop;
    }
    const double d = std::clamp(
        static_cast<double>(s.delivered) / static_cast<double>(s.generated),
        config_.delivery_floor, 1.0);
    eq.b = -std::log(d);
    eq.weight = static_cast<double>(s.generated);
    equations.push_back(std::move(eq));
  }
  if (index.empty()) return {};

  // Projected gradient descent on f(x) = 1/2 sum_e w_e (A_e x - b_e)^2,
  // x >= 0.  Step size from the Lipschitz bound L <= max_col_count *
  // max_row_count * max_w (crude but safe); refined by backtracking-free
  // diagonal scaling.
  std::vector<double> x(index.size(), 0.0);
  std::vector<double> diag(index.size(), 0.0);
  for (const Equation& eq : equations) {
    for (const std::size_t l : eq.links) {
      diag[l] += eq.weight * static_cast<double>(eq.links.size());
    }
  }

  double prev_obj = std::numeric_limits<double>::infinity();
  std::vector<double> grad(index.size());
  for (std::uint32_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double obj = 0.0;
    for (const Equation& eq : equations) {
      double r = -eq.b;
      for (const std::size_t l : eq.links) r += x[l];
      obj += 0.5 * eq.weight * r * r;
      const double wr = eq.weight * r;
      for (const std::size_t l : eq.links) grad[l] += wr;
    }
    for (std::size_t l = 0; l < x.size(); ++l) {
      if (diag[l] <= 0.0) continue;
      x[l] = std::max(0.0, x[l] - grad[l] / diag[l]);
    }
    if (prev_obj - obj < config_.tolerance * std::max(1.0, prev_obj)) break;
    prev_obj = obj;
  }

  std::unordered_map<LinkKey, double, LinkKeyHash> out;
  out.reserve(index.size());
  for (const auto& [key, l] : index) {
    const double s_pkt = std::exp(-x[l]);
    out[key] = packet_success_to_attempt_loss(s_pkt, config_.max_attempts);
  }
  return out;
}

}  // namespace dophy::tomo::baseline
