#pragma once

// Traditional baseline 3 — EM over per-packet end-to-end outcomes.
//
// The strongest classical estimator in our suite: it consumes individual
// packet outcomes (not window ratios) under the serial-link model
// "packet succeeds iff every link on its assumed path succeeds".
//
// E-step: for a failed packet over links l_1..l_n with current success
// estimates s_i, the posterior probability the packet *reached* link i is
//   P(reach i | fail) = [prod_{j<i} s_j] * (1 - prod_{j>=i} s_j) / (1 - prod_j s_j)
// and the posterior it *crossed* link i is P(reach i+1 | fail).
// M-step: s_i = (expected crossings) / (expected reaches).
//
// Like the other baselines it assumes the snapshot path is the true path
// and converts packet-level success to per-attempt loss via the ARQ law.

#include <unordered_map>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/tomo/baseline/inputs.hpp"

namespace dophy::tomo::baseline {

struct EmConfig {
  std::uint32_t max_attempts = 8;
  std::uint32_t max_iterations = 100;
  double tolerance = 1e-7;   ///< max per-link change to declare convergence
  double initial_success = 0.98;
};

class EmPathTomography {
 public:
  explicit EmPathTomography(const EmConfig& config) : config_(config) {}

  /// Per-attempt loss estimates from per-packet observations.
  [[nodiscard]] std::unordered_map<dophy::net::LinkKey, double, dophy::net::LinkKeyHash>
  estimate(const std::vector<PacketObservation>& packets) const;

 private:
  EmConfig config_;
};

}  // namespace dophy::tomo::baseline
