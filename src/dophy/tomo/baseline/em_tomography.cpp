#include "dophy/tomo/baseline/em_tomography.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace dophy::tomo::baseline {

using dophy::net::LinkKey;
using dophy::net::LinkKeyHash;
using dophy::net::NodeId;

std::unordered_map<LinkKey, double, LinkKeyHash> EmPathTomography::estimate(
    const std::vector<PacketObservation>& packets) const {
  // Index links; pre-resolve each packet's link-index path.  Identical
  // (path, outcome) packets are collapsed into weighted groups — EM iterates
  // over groups, which shrinks the E-step by orders of magnitude.
  std::unordered_map<LinkKey, std::size_t, LinkKeyHash> index;
  struct Group {
    std::vector<std::size_t> links;
    double success_count = 0.0;
    double failure_count = 0.0;
  };
  std::unordered_map<std::string, Group> group_map;

  for (const PacketObservation& p : packets) {
    if (p.path.empty()) continue;
    std::string group_key;
    group_key.reserve(p.path.size() * 2 + 2);
    std::vector<std::size_t> links;
    NodeId prev = p.origin;
    group_key.push_back(static_cast<char>(p.origin & 0xFF));
    group_key.push_back(static_cast<char>(p.origin >> 8));
    for (const NodeId hop : p.path) {
      const LinkKey key{prev, hop};
      const auto [it, inserted] = index.emplace(key, index.size());
      links.push_back(it->second);
      group_key.push_back(static_cast<char>(hop & 0xFF));
      group_key.push_back(static_cast<char>(hop >> 8));
      prev = hop;
    }
    Group& g = group_map[group_key];
    if (g.links.empty()) g.links = std::move(links);
    if (p.delivered) {
      g.success_count += 1.0;
    } else {
      g.failure_count += 1.0;
    }
  }
  if (index.empty()) return {};

  std::vector<Group> groups;
  groups.reserve(group_map.size());
  for (auto& [key, g] : group_map) groups.push_back(std::move(g));

  std::vector<double> s(index.size(), config_.initial_success);
  std::vector<double> reach(index.size());
  std::vector<double> cross(index.size());
  std::vector<double> prefix;  // prod_{j<i} s_j
  std::vector<double> suffix;  // prod_{j>=i} s_j

  for (std::uint32_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::fill(reach.begin(), reach.end(), 0.0);
    std::fill(cross.begin(), cross.end(), 0.0);

    for (const Group& g : groups) {
      const std::size_t n = g.links.size();
      // Successful packets reached and crossed every link.
      if (g.success_count > 0.0) {
        for (const std::size_t l : g.links) {
          reach[l] += g.success_count;
          cross[l] += g.success_count;
        }
      }
      if (g.failure_count <= 0.0) continue;

      prefix.assign(n + 1, 1.0);
      suffix.assign(n + 1, 1.0);
      for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] * s[g.links[i]];
      for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] * s[g.links[i]];
      const double p_fail = 1.0 - prefix[n];
      if (p_fail <= 1e-12) {
        // Model says failure is impossible; attribute the failure uniformly
        // as a reach on every link with no crossing on the first.
        for (const std::size_t l : g.links) reach[l] += g.failure_count / static_cast<double>(n);
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double reach_i = prefix[i] * (1.0 - suffix[i]) / p_fail;
        const double cross_i = prefix[i + 1] * (1.0 - suffix[i + 1]) / p_fail;
        reach[g.links[i]] += g.failure_count * reach_i;
        cross[g.links[i]] += g.failure_count * cross_i;
      }
    }

    double max_delta = 0.0;
    for (std::size_t l = 0; l < s.size(); ++l) {
      if (reach[l] <= 1e-12) continue;
      const double updated = std::clamp(cross[l] / reach[l], 1e-6, 1.0);
      max_delta = std::max(max_delta, std::abs(updated - s[l]));
      s[l] = updated;
    }
    if (max_delta < config_.tolerance) break;
  }

  std::unordered_map<LinkKey, double, LinkKeyHash> out;
  out.reserve(index.size());
  for (const auto& [key, l] : index) {
    out[key] = packet_success_to_attempt_loss(s[l], config_.max_attempts);
  }
  return out;
}

}  // namespace dophy::tomo::baseline
