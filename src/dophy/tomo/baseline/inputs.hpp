#pragma once

// Inputs available to *traditional* (pre-Dophy) loss tomography.  These
// schemes observe only (a) end-to-end delivery outcomes per origin and
// (b) routing-topology snapshots from the control plane — never per-hop
// transmission counts.  Under dynamic routing the snapshot paths go stale,
// and under ARQ the end-to-end outcomes carry almost no signal; both
// deficits are exactly what the paper's comparison demonstrates.
//
// All baselines estimate the *per-attempt* link loss ratio (the quantity
// Dophy reports) by inverting the ARQ success law with the known MAC budget
// m:   P(link delivers packet) = 1 - p^m   =>   p = (1 - S)^(1/m).
// This is the strongest possible conversion a traditional scheme could
// apply, so the comparison is conservative in the baselines' favor.

#include <cstdint>
#include <vector>

#include "dophy/net/types.hpp"

namespace dophy::tomo::baseline {

/// Window aggregate for one origin under an assumed (snapshot) path.
struct PathSample {
  dophy::net::NodeId origin = dophy::net::kInvalidNode;
  /// Assumed forwarding chain: first element is the origin's parent, last is
  /// the sink.
  std::vector<dophy::net::NodeId> path;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
};

/// Per-packet observation (for the EM baseline, which exploits individual
/// outcomes rather than per-origin ratios).
struct PacketObservation {
  dophy::net::NodeId origin = dophy::net::kInvalidNode;
  std::vector<dophy::net::NodeId> path;  ///< assumed at generation time
  bool delivered = false;
};

/// Converts a packet-level link success ratio into a per-attempt loss ratio
/// given the MAC attempt budget.
[[nodiscard]] double packet_success_to_attempt_loss(double packet_success,
                                                    std::uint32_t max_attempts);

/// Expands a parent map into the chain origin -> ... -> sink; empty result
/// when the chain is broken or loops.
[[nodiscard]] std::vector<dophy::net::NodeId> chase_parents(
    const std::vector<dophy::net::NodeId>& parent_of, dophy::net::NodeId origin,
    std::uint16_t max_hops = 64);

}  // namespace dophy::tomo::baseline
