#pragma once

// Per-link loss estimation from decoded per-hop transmission counts.
//
// A hop observation over link l is the number of transmission attempts until
// the receiver first heard the frame — Geometric(1 - p_l) in the per-attempt
// loss p_l, right-censored at the aggregation threshold K.  The likelihood
// math (sufficient statistics + closed-form MLE / posterior mean) lives in
// geometric_mle.hpp so the streaming sink's incremental estimator provably
// evaluates the same formulas; this class is the batch front-end used inside
// a trial: accumulate whole decoded paths, then read every estimate at the
// end.  An optional per-epoch count decay turns the estimator into a tracker
// for drifting link qualities.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/geometric_mle.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

class LinkLossEstimator {
 public:
  /// `decay` in (0,1] scales accumulated counts at each end_epoch(); 1.0
  /// keeps the estimator cumulative.
  LinkLossEstimator(std::uint32_t censor_threshold, double decay = 1.0);

  /// Switches to the Bayesian posterior-mean estimate under a Beta(a, b)
  /// prior on the per-attempt success probability q.  The geometric
  /// likelihood is conjugate (uncensored t: a += 1, b += t-1; censored:
  /// b += K-1), so this only shifts the closed form; a = b = 0 recovers the
  /// MLE.  Small priors (e.g. Beta(1, 0.3)) regularize thin links.
  void set_beta_prior(double a, double b);

  /// Feeds every hop of a decoded path.
  void observe_path(const DecodedPath& path);

  /// Feeds a single hop observation for `link`.
  void observe(dophy::net::LinkKey link, const HopObservation& obs);

  /// Applies the decay factor (call at tracking-epoch boundaries).
  void end_epoch();

  /// Estimate for one link; nullopt if the link has no observations.
  [[nodiscard]] std::optional<LinkEstimate> estimate(dophy::net::LinkKey link) const;

  /// All links with observations, sorted by key.
  [[nodiscard]] std::vector<std::pair<dophy::net::LinkKey, LinkEstimate>> all_estimates() const;

  /// Raw sufficient statistics for one link; nullptr when never observed.
  /// Exposed for the incremental-vs-batch differential tests.
  [[nodiscard]] const GeometricSuffStats* stats(dophy::net::LinkKey link) const;

  [[nodiscard]] std::uint32_t censor_threshold() const noexcept { return k_; }
  [[nodiscard]] std::size_t link_count() const noexcept { return stats_.size(); }
  void clear() noexcept { stats_.clear(); }

 private:
  std::uint32_t k_;
  double decay_;
  double prior_a_ = 0.0;  ///< Beta prior pseudo-successes
  double prior_b_ = 0.0;  ///< Beta prior pseudo-failures
  std::unordered_map<dophy::net::LinkKey, GeometricSuffStats, dophy::net::LinkKeyHash> stats_;
};

}  // namespace dophy::tomo
