#pragma once

// Node-side Dophy: the PacketInstrumentation that rides the simulator's data
// path.  At the origin it stamps the node's installed model version and a
// fresh suspended arithmetic-coder state into the packet; at every hop the
// receiver resumes the coder from the in-packet trailer, appends two symbols
// (its own node id, then the aggregated transmission-count symbol read from
// the winning frame's attempt counter) and re-suspends.  At the sink the
// stream is finalized so the decoder can run.

#include <cstdint>
#include <vector>

#include "dophy/common/histogram.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/tomo/measurement.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

struct DophyEncoderStats {
  std::uint64_t packets_originated = 0;
  std::uint64_t hops_encoded = 0;
  std::uint64_t total_bits_appended = 0;   ///< across all hops (pre-finalize)
  std::uint64_t id_bits_appended = 0;      ///< node-id portion of the stream
  std::uint64_t retx_bits_appended = 0;    ///< transmission-count portion
  std::uint64_t missing_model_hops = 0;    ///< forwarder lacked the stamped version
  std::uint64_t truncated_hops = 0;        ///< payload budget exhausted mid-path
  dophy::common::Histogram bits_per_hop{63};

  [[nodiscard]] double mean_bits_per_hop() const noexcept {
    return hops_encoded == 0
               ? 0.0
               : static_cast<double>(total_bits_appended) / static_cast<double>(hops_encoded);
  }
  [[nodiscard]] double mean_id_bits_per_hop() const noexcept {
    return hops_encoded == 0
               ? 0.0
               : static_cast<double>(id_bits_appended) / static_cast<double>(hops_encoded);
  }
  [[nodiscard]] double mean_retx_bits_per_hop() const noexcept {
    return hops_encoded == 0
               ? 0.0
               : static_cast<double>(retx_bits_appended) / static_cast<double>(hops_encoded);
  }
};

class DophyInstrumentation final : public dophy::net::PacketInstrumentation {
 public:
  /// `node_count` sizes the id alphabet; every node's store starts with the
  /// uniform bootstrap ModelSet (version 0).  `max_wire_bytes` caps the
  /// measurement field's on-air size (0 = unlimited): when a hop would push
  /// past the budget (e.g. an 802.15.4 frame's spare payload), it marks the
  /// blob truncated instead of appending, and the sink drops the sample.
  DophyInstrumentation(std::size_t node_count, const SymbolMapper& mapper,
                       std::size_t max_wire_bytes = 0);

  // PacketInstrumentation:
  void on_origin(dophy::net::Packet& packet, dophy::net::NodeId origin,
                 dophy::net::SimTime now) override;
  void on_hop_received(dophy::net::Packet& packet, dophy::net::NodeId receiver,
                       dophy::net::NodeId sender, std::uint32_t attempts,
                       dophy::net::SimTime now) override;

  /// Installs a disseminated model set at one node (the flood callback).
  void install(dophy::net::NodeId node, const ModelSet& set);

  [[nodiscard]] const ModelStore& store(dophy::net::NodeId node) const;
  [[nodiscard]] const SymbolMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] const DophyEncoderStats& stats() const noexcept { return stats_; }

 private:
  SymbolMapper mapper_;
  std::vector<ModelStore> stores_;  ///< one per node
  std::size_t max_wire_bytes_;
  DophyEncoderStats stats_;
};

}  // namespace dophy::tomo
