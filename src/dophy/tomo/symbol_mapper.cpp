#include "dophy/tomo/symbol_mapper.hpp"

#include <stdexcept>

namespace dophy::tomo {

SymbolMapper::SymbolMapper(std::uint32_t censor_threshold) : k_(censor_threshold) {
  if (censor_threshold < 2) {
    throw std::invalid_argument("SymbolMapper: censor threshold must be >= 2");
  }
}

std::uint32_t SymbolMapper::to_symbol(std::uint32_t attempts) const {
  if (attempts == 0) throw std::invalid_argument("SymbolMapper::to_symbol: attempts >= 1");
  return attempts >= k_ ? k_ - 1 : attempts - 1;
}

bool SymbolMapper::is_censored(std::uint32_t symbol) const {
  if (symbol >= k_) throw std::out_of_range("SymbolMapper::is_censored: bad symbol");
  return symbol == k_ - 1;
}

std::uint32_t SymbolMapper::to_attempts(std::uint32_t symbol) const {
  if (symbol >= k_) throw std::out_of_range("SymbolMapper::to_attempts: bad symbol");
  return symbol + 1;  // censored symbol k_-1 maps to the lower bound K
}

}  // namespace dophy::tomo
