#pragma once

// End-to-end experiment pipeline: builds a network with Dophy instrumentation,
// runs warm-up + measurement windows, decodes at the sink, runs the
// traditional baselines on their own (information-poorer) inputs, and scores
// every method against the same empirical ground truth.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dophy/check/check.hpp"
#include "dophy/fault/fault_plan.hpp"
#include "dophy/fault/injector.hpp"
#include "dophy/net/network.hpp"
#include "dophy/net/trickle.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/metrics.hpp"
#include "dophy/tomo/prob_model_manager.hpp"

namespace dophy::tomo {

/// How packets record their path for the sink.
enum class PathMode {
  kIdCoding,   ///< arithmetic-coded per-hop receiver ids (Dophy default)
  kHashPath,   ///< fixed 24-bit path hash + sink-side graph search
};

struct DophyConfig {
  std::uint32_t censor_threshold = 4;  ///< symbol-aggregation K
  ModelUpdateConfig update;
  double tracker_decay = 1.0;  ///< <1 turns the MLE into a drift tracker
  /// Beta(a, b) prior on per-attempt success; both 0 = plain MLE.
  double prior_successes = 0.0;
  double prior_failures = 0.0;
  PathMode path_mode = PathMode::kIdCoding;
  /// Per-frame budget for the measurement field (0 = unlimited); hops past
  /// the budget mark the packet truncated and the sink drops the sample.
  std::size_t max_wire_bytes = 0;
  /// Disseminate model updates with the real Trickle protocol instead of
  /// the abstract depth-latency flood (latency/cost then emerge from the
  /// lossy control plane, and stale forwarders become possible).
  bool use_trickle_dissemination = false;
  dophy::net::TrickleConfig trickle;
};

/// Observer of the raw sink-side stream: every model set installed at the
/// sink and every packet delivered to it, in arrival order — exactly the
/// input a standalone sink service would see.  Armed by the dophy_sink
/// record/replay tooling.  Non-owning and non-canonical: eval's config
/// canonicalization ignores the pointer, so tapped runs must not be served
/// from (or written to) the result cache.
class SinkReportTap {
 public:
  virtual ~SinkReportTap() = default;
  virtual void on_sink_install(const ModelSet& set) = 0;
  virtual void on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                           bool in_measure) = 0;
};

struct PipelineConfig {
  dophy::net::NetworkConfig net;
  DophyConfig dophy;
  double warmup_s = 300.0;            ///< routing convergence, not scored
  double measure_s = 3600.0;          ///< evaluation window
  double snapshot_interval_s = 60.0;  ///< baseline routing snapshots / epochs
  std::uint64_t min_truth_attempts = 30;  ///< ground-truth support to score a link
  /// Fraction of the measurement window (ending at its close) that defines
  /// the ground truth.  1.0 scores against the whole-window average; smaller
  /// values score against *recent* truth, which is the fair target for
  /// drifting links and tracking estimators.
  double truth_tail_fraction = 1.0;
  bool run_baselines = true;
  /// Chaos plan generated from these rates and executed against the network
  /// (disabled by default).  Fault times are relative to simulation start,
  /// so set faults.start_s >= warmup_s to spare routing convergence.
  dophy::fault::FaultPlanConfig faults;
  /// Reject decoded hops the topology cannot carry (catches bit-flipped
  /// streams that still parse).  A deployment would validate against
  /// neighborhood reports; the simulator uses the true neighbor graph.
  bool validate_decoded_hops = true;
  /// Record the raw per-hop transmission counts of delivered packets (ground
  /// truth, uncensored) — used by the offline codec-comparison benches.
  bool collect_attempt_stream = false;
  /// Record a Dophy accuracy-vs-time series, one point per snapshot
  /// interval (convergence-after-deployment view).
  bool collect_epoch_series = false;
  /// Invariant oracle (dophy::check).  Disabled by default: the pipeline
  /// also arms it when dophy::check::global_enabled() is set (bench --check).
  dophy::check::CheckConfig check;

  /// Raw sink-stream observer (see SinkReportTap); nullptr = off.
  SinkReportTap* report_tap = nullptr;

  /// Live-mode sink: a second tap receiving the same install/delivery stream,
  /// intended for an in-process sink::SinkService behind a sink::LiveSinkFeed
  /// (the simulator feeds the service through its ingest queue instead of a
  /// recorded stream).  Kept separate from report_tap so a run can record and
  /// feed live simultaneously (the recorded stream is the live feed's
  /// differential reference).  Non-owning and non-canonical, like report_tap:
  /// live runs bypass the result cache.
  SinkReportTap* live_sink = nullptr;
};

/// One point of the within-run convergence series.
struct EpochPoint {
  double t_s = 0.0;             ///< seconds since measurement start
  std::uint64_t packets = 0;    ///< packets decoded so far
  std::size_t links_scored = 0;
  double mae = 0.0;
  double p90_abs = 0.0;
};

struct MethodResult {
  std::string name;
  std::vector<LinkScore> scores;
  AccuracySummary summary;
};

struct PipelineResult {
  std::vector<MethodResult> methods;  ///< dophy, delivery-ratio, nnls, em

  dophy::net::NetworkStats net_stats;  ///< at end of run
  DophyEncoderStats encoder_stats;
  DophyDecoderStats decoder_stats;     ///< id-coding mode decode counters
  ModelManagerStats manager_stats;
  /// Hash-mode search counters (zero-filled under kIdCoding).
  std::uint64_t hash_search_failures = 0;
  std::uint64_t hash_search_ambiguous = 0;
  double hash_candidates_per_packet = 0.0;

  /// Trickle counters (zero-filled unless use_trickle_dissemination).
  dophy::net::TrickleStats trickle_stats;

  /// Fault-injection counters (zero-filled when no faults were configured).
  dophy::fault::FaultStats fault_stats;
  std::size_t fault_events_planned = 0;

  /// Invariant-oracle verdict (finalized == false when checks were off).
  dophy::check::CheckReport check_report;

  std::uint64_t packets_measured = 0;     ///< delivered inside the window
  double mean_bits_per_packet = 0.0;      ///< finalized measurement stream
  double mean_path_length = 0.0;
  std::size_t active_links = 0;           ///< links with enough ground truth
  std::uint64_t parent_changes_in_window = 0;
  double parent_changes_per_node_hour = 0.0;
  double delivery_ratio_in_window = 1.0;

  /// Raw transmission counts per delivered hop in the measurement window
  /// (only when PipelineConfig::collect_attempt_stream is set).
  std::vector<std::uint32_t> attempt_stream;

  /// Dophy accuracy over time (only when collect_epoch_series is set).
  std::vector<EpochPoint> epoch_series;

  /// Wall-clock seconds per pipeline phase (warmup, measure, decode,
  /// ground_truth, score, baselines).  Also merged into
  /// dophy::obs::global_phases() for the bench report writer.
  std::map<std::string, double> phase_seconds;

  /// Convenience lookup; throws if the method was not run.
  [[nodiscard]] const MethodResult& method(const std::string& name) const;
};

[[nodiscard]] PipelineResult run_pipeline(const PipelineConfig& config);

}  // namespace dophy::tomo
