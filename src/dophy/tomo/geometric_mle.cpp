#include "dophy/tomo/geometric_mle.hpp"

#include <algorithm>
#include <cmath>

namespace dophy::tomo {

LinkEstimate estimate_censored_geometric(const GeometricSuffStats& stats, std::uint32_t k,
                                         double prior_a, double prior_b) {
  LinkEstimate est;
  est.samples = stats.uncensored + stats.censored;
  const double denom = stats.attempts_sum + stats.censored * static_cast<double>(k - 1);
  if (prior_a > 0.0 || prior_b > 0.0) {
    // Beta posterior mean: successes U + a over trials (sum t_i + C(K-1)) + a + b.
    const double q = (stats.uncensored + prior_a) / (denom + prior_a + prior_b);
    est.loss = 1.0 - std::clamp(q, 1e-9, 1.0);
    const double n = stats.uncensored + prior_a + prior_b;
    est.stderr_ = std::sqrt(std::max(q * q * (1.0 - q), 1e-12) / std::max(n, 1.0));
    return est;
  }
  if (stats.uncensored <= 0.0) {
    // Every observation censored: the MLE sits at the boundary q = 0; report
    // the most conservative identifiable value instead.
    est.loss = 1.0 - 1.0 / static_cast<double>(k);
    est.stderr_ = 1.0;  // effectively unknown
    return est;
  }
  const double q = std::clamp(stats.uncensored / denom, 1e-9, 1.0);
  est.loss = 1.0 - q;
  // Observed Fisher information for q.
  const double failures = (stats.attempts_sum - stats.uncensored) +
                          stats.censored * static_cast<double>(k - 1);
  const double info = stats.uncensored / (q * q) +
                      (failures > 0.0 ? failures / ((1.0 - q) * (1.0 - q)) : 0.0);
  est.stderr_ = info > 0.0 ? 1.0 / std::sqrt(info) : 1.0;
  return est;
}

}  // namespace dophy::tomo
