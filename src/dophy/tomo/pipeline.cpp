#include "dophy/tomo/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "dophy/check/invariants.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/timer.hpp"
#include "dophy/obs/trace.hpp"
#include "dophy/tomo/baseline/delivery_ratio.hpp"
#include "dophy/tomo/baseline/em_tomography.hpp"
#include "dophy/tomo/baseline/inputs.hpp"
#include "dophy/tomo/baseline/nnls_tomography.hpp"
#include "dophy/tomo/hash_path.hpp"
#include "dophy/tomo/link_inference.hpp"

namespace dophy::tomo {

using dophy::net::kInvalidNode;
using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::LinkKeyHash;
using dophy::net::Network;
using dophy::net::NodeId;
using dophy::net::PacketFate;
using dophy::net::SimTime;

const MethodResult& PipelineResult::method(const std::string& name) const {
  for (const MethodResult& m : methods) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("PipelineResult::method: no method named " + name);
}

namespace {

/// Scores an estimate map against ground truth over the active links.
std::vector<LinkScore> score_map(
    const std::unordered_map<LinkKey, double, LinkKeyHash>& estimates,
    const std::unordered_map<LinkKey, std::pair<double, std::uint64_t>, LinkKeyHash>& truth) {
  std::vector<LinkScore> scores;
  for (const auto& [key, est] : estimates) {
    const auto it = truth.find(key);
    if (it == truth.end()) continue;
    LinkScore sc;
    sc.link = key;
    sc.estimated = est;
    sc.truth = it->second.first;
    sc.truth_attempts = it->second.second;
    scores.push_back(sc);
  }
  std::sort(scores.begin(), scores.end(),
            [](const LinkScore& a, const LinkScore& b) { return a.link < b.link; });
  return scores;
}

}  // namespace

PipelineResult run_pipeline(const PipelineConfig& config) {
  // Stamp every trace event emitted by this run with its seed so concurrent
  // trials writing to one JSONL sink can be demultiplexed.
  const dophy::obs::ScopedRunContext run_ctx(config.net.seed);
  dophy::obs::PhaseProfile profile;

  const SymbolMapper mapper(config.dophy.censor_threshold);
  const bool hash_mode = config.dophy.path_mode == PathMode::kHashPath;

  // Exactly one instrumentation is active; both expose install/store/stats.
  std::optional<DophyInstrumentation> id_instr;
  std::optional<HashPathInstrumentation> hash_instr;
  dophy::net::PacketInstrumentation* instr_ptr = nullptr;
  if (hash_mode) {
    hash_instr.emplace(config.net.topology.node_count, mapper);
    instr_ptr = &*hash_instr;
  } else {
    id_instr.emplace(config.net.topology.node_count, mapper, config.dophy.max_wire_bytes);
    instr_ptr = &*id_instr;
  }
  auto install = [&](NodeId node, const ModelSet& set) {
    if (hash_mode) {
      hash_instr->install(node, set);
    } else {
      id_instr->install(node, set);
    }
    if (node == kSinkId) {
      if (config.report_tap != nullptr) config.report_tap->on_sink_install(set);
      if (config.live_sink != nullptr) config.live_sink->on_sink_install(set);
    }
  };
  const ModelStore& sink_store =
      hash_mode ? hash_instr->store(kSinkId) : id_instr->store(kSinkId);

  // The invariant checker installs a simulator trace hook and the fault /
  // trickle subsystems schedule through net.sim() directly; all three are
  // serial-only.  Drop to the serial engine rather than crash mid-run.
  dophy::net::NetworkConfig net_config = config.net;
  if (config.check.enabled || dophy::check::global_enabled() || config.faults.enabled ||
      config.dophy.use_trickle_dissemination) {
    net_config.pdes.lp_count = 1;
  }

  Network net(net_config, instr_ptr);
  const std::size_t node_count = net.node_count();

  // --- Invariant oracle ----------------------------------------------------
  // Installed before any event runs so its counter baselines match the
  // pristine network.  Armed per-run (config.check) or process-wide
  // (bench --check).  When off, the network keeps null observer/trace-hook
  // pointers and the hot path pays nothing.
  std::optional<dophy::check::InvariantChecker> checker;
  if (config.check.enabled || dophy::check::global_enabled()) {
    checker.emplace(config.check);
    checker->install(net);
  }

  // --- Fault injection -----------------------------------------------------
  // The injector outlives the event queue (both die with this scope) and the
  // plan is generated before any sim activity, so a fixed (faults, net.seed)
  // pair reproduces the same chaos bit-for-bit.
  std::optional<dophy::fault::FaultInjector> injector;
  {
    auto plan = dophy::fault::FaultPlan::generate(config.faults, node_count);
    if (!plan.empty()) {
      injector.emplace(net, std::move(plan), config.faults.seed ^ config.net.seed);
      injector->arm();
    }
  }

  // --- Sink-side machinery -------------------------------------------------
  // Trickle mode keeps a version-indexed registry of published sets so the
  // install callback (which only carries the version) can materialize them.
  std::unordered_map<std::uint8_t, ModelSet> published_sets;
  std::optional<dophy::net::TrickleDissemination> trickle;
  if (config.dophy.use_trickle_dissemination) {
    trickle.emplace(net, config.dophy.trickle,
                    [&](NodeId node, std::uint8_t version, SimTime) {
                      const auto it = published_sets.find(version);
                      if (it != published_sets.end()) install(node, it->second);
                    });
  }

  ModelUpdateConfig update_config = config.dophy.update;
  if (hash_mode) update_config.update_id_model = false;  // ids not coded
  ProbModelManager manager(
      update_config, node_count, mapper, [&](const ModelSet& set) {
        if (trickle) {
          published_sets.insert_or_assign(set.version, set);
          trickle->publish(set.version, set.wire_size());
          return;  // installs (sink included) arrive via the protocol
        }
        install(kSinkId, set);  // sink publishes to itself immediately
        net.flood_from_sink(set.wire_size(), [&install, set](NodeId node, SimTime) {
          install(node, set);
        });
      });
  DophyDecoder id_decoder(sink_store, mapper,
                          static_cast<std::uint16_t>(config.net.traffic.max_hops + 2));
  if (config.validate_decoded_hops) {
    id_decoder.set_hop_validator([&net](NodeId sender, NodeId receiver) {
      return net.topology().are_neighbors(sender, receiver);
    });
  }
  HashPathDecoder hash_decoder(sink_store, mapper, net.topology());
  auto decode = [&](const dophy::net::Packet& packet) -> DecodeResult {
    if (!hash_mode) return id_decoder.decode(packet);
    if (packet.blob.dropped) return DecodeError::kReportLost;
    auto decoded = hash_decoder.decode(packet);
    if (decoded.has_value()) return std::move(*decoded);
    return DecodeError::kMalformedStream;  // hash decoder keeps its own stats
  };
  LinkLossEstimator dophy_estimator(config.dophy.censor_threshold, config.dophy.tracker_decay);
  if (config.dophy.prior_successes > 0.0 || config.dophy.prior_failures > 0.0) {
    dophy_estimator.set_beta_prior(config.dophy.prior_successes, config.dophy.prior_failures);
  }

  bool in_measure = false;
  std::uint64_t packets_measured = 0;
  std::uint64_t measured_bits = 0;
  std::uint64_t measured_hops = 0;

  // Strict per-packet decode comparison needs bit-exact semantics: id-coding
  // (the hash decoder reconstructs plausible, not recorded, paths) and no
  // fault injection (corrupted reports legitimately decode to garbage).
  const bool faults_active = injector.has_value();
  const bool strict_paths = checker.has_value() && checker->config().strict_decode &&
                            !hash_mode && !faults_active;

  std::vector<std::uint32_t> attempt_stream;
  net.set_delivery_handler([&](const dophy::net::Packet& packet, SimTime now) {
    const dophy::obs::ObsTimer decode_timer(profile, "decode");
    if (config.report_tap != nullptr) config.report_tap->on_delivery(packet, now, in_measure);
    if (config.live_sink != nullptr) config.live_sink->on_delivery(packet, now, in_measure);
    auto decoded = decode(packet);
    if (!decoded) return;
    // Successful sink decode: sim-time latency from generation to decode
    // (only decoded packets, unlike sim.e2e.latency_us which covers every
    // delivery), plus an instant span linked back to the packet lifecycle.
    static const auto decode_latency =
        dophy::obs::Registry::global().latency_histogram("tomo.decode.latency_us");
    decode_latency.observe(static_cast<std::uint64_t>(now - packet.created_at));
    auto& span_trace = dophy::obs::SpanTrace::global();
    if (span_trace.enabled()) {
      decoded->decode_span = span_trace.instant(
          "decode", static_cast<std::uint64_t>(now), [&](dophy::obs::EventBuilder& b) {
            b.u64("origin", packet.origin).u64("hops", decoded->hops.size());
          });
      span_trace.link(packet.span, decoded->decode_span, static_cast<std::uint64_t>(now));
    }
    if (strict_paths) {
      std::vector<dophy::check::InvariantChecker::DecodedHopView> views;
      views.reserve(decoded->hops.size());
      for (const auto& hop : decoded->hops) {
        views.push_back({hop.sender, hop.receiver, hop.observation.attempts,
                         hop.observation.censored});
      }
      checker->verify_decoded_path(packet, decoded->origin, views,
                                   config.dophy.censor_threshold);
    }
    manager.observe(*decoded);
    if (in_measure) {
      dophy_estimator.observe_path(*decoded);
      ++packets_measured;
      measured_bits += packet.blob.logical_bits;
      measured_hops += decoded->hops.size();
      if (config.collect_attempt_stream) {
        for (const auto& hop : packet.true_hops) {
          attempt_stream.push_back(hop.attempts_to_first_rx);
        }
      }
    }
  });

  net.add_periodic(config.dophy.update.check_interval_s,
                   [&](SimTime now) { manager.on_tick(now); });

  // --- Baseline inputs: periodic routing snapshots -------------------------
  std::vector<std::vector<NodeId>> snapshots;  // snapshots[i][node] = parent
  std::vector<SimTime> snapshot_times;
  auto take_snapshot = [&](SimTime now) {
    std::vector<NodeId> parents(node_count, kInvalidNode);
    for (std::size_t i = 1; i < node_count; ++i) {
      parents[i] = net.node(static_cast<NodeId>(i)).routing().parent();
    }
    snapshots.push_back(std::move(parents));
    snapshot_times.push_back(now);
  };
  // Within-run convergence series state (filled only when requested).
  std::vector<EpochPoint> epoch_series;
  SimTime series_start = 0;
  std::unordered_map<LinkKey, dophy::net::Link::Snapshot, LinkKeyHash> series_truth_start;

  net.add_periodic(config.snapshot_interval_s, [&](SimTime now) {
    take_snapshot(now);
    if (!in_measure) return;
    if (config.dophy.tracker_decay < 1.0) dophy_estimator.end_epoch();
    if (config.collect_epoch_series) {
      EpochPoint point;
      point.t_s = static_cast<double>(now - series_start) / 1e6;
      point.packets = packets_measured;
      std::vector<LinkScore> scores;
      for (const auto& [key, est] : dophy_estimator.all_estimates()) {
        const auto it = series_truth_start.find(key);
        if (it == series_truth_start.end()) continue;
        const auto& link = net.link(key.from, key.to);
        const std::uint64_t attempts = link.data_attempts() - it->second.attempts;
        if (attempts < config.min_truth_attempts) continue;
        LinkScore sc;
        sc.link = key;
        sc.estimated = est.loss;
        sc.truth = link.empirical_loss_since(it->second, now);
        sc.truth_attempts = attempts;
        scores.push_back(sc);
      }
      const auto summary = summarize_scores(scores, scores.size());
      point.links_scored = summary.links_scored;
      point.mae = summary.mae;
      point.p90_abs = summary.p90_abs;
      epoch_series.push_back(point);
    }
  });

  // --- Warm-up --------------------------------------------------------------
  {
    dophy::obs::ObsTimer t(profile, "warmup");
    net.run_for(config.warmup_s);
  }
  take_snapshot(net.sim().now());  // guarantee a snapshot at window start

  // Ground-truth window starts here; with a tail fraction < 1 the counters
  // are re-snapshotted later so truth covers only the window's tail.
  std::unordered_map<LinkKey, dophy::net::Link::Snapshot, LinkKeyHash> truth_start;
  auto snapshot_truth = [&] {
    truth_start.clear();
    for (const LinkKey key : net.link_keys()) {
      truth_start.emplace(key, net.link(key.from, key.to).snapshot());
    }
  };
  snapshot_truth();
  if (config.truth_tail_fraction < 1.0 && config.truth_tail_fraction > 0.0) {
    const double lead_s = config.measure_s * (1.0 - config.truth_tail_fraction);
    net.schedule_global_in(static_cast<SimTime>(lead_s * 1e6), snapshot_truth);
  }
  const std::uint64_t parent_changes_start = net.stats().parent_changes;
  const std::uint64_t generated_start = net.stats().packets_generated;
  const std::uint64_t delivered_start = net.stats().packets_delivered;
  const SimTime measure_start = net.sim().now();
  const std::size_t outcomes_start = net.traces().outcomes().size();
  series_start = measure_start;
  series_truth_start = truth_start;
  in_measure = true;

  // --- Measurement window ----------------------------------------------------
  {
    dophy::obs::ObsTimer t(profile, "measure");
    net.run_for(config.measure_s);
  }
  in_measure = false;
  const SimTime measure_end = net.sim().now();

  // --- Ground truth -----------------------------------------------------------
  dophy::obs::ObsTimer truth_timer(profile, "ground_truth");
  std::unordered_map<LinkKey, std::pair<double, std::uint64_t>, LinkKeyHash> truth;
  std::size_t active_links = 0;
  for (const LinkKey key : net.link_keys()) {
    const auto& link = net.link(key.from, key.to);
    const auto start = truth_start.at(key);
    const std::uint64_t attempts = link.data_attempts() - start.attempts;
    if (attempts < config.min_truth_attempts) continue;
    const double loss = link.empirical_loss_since(start, measure_end);
    truth.emplace(key, std::make_pair(loss, attempts));
    ++active_links;
  }
  truth_timer.stop();

  PipelineResult result;
  result.net_stats = net.stats();
  result.encoder_stats = hash_mode ? hash_instr->stats() : id_instr->stats();
  result.decoder_stats = id_decoder.stats();
  result.manager_stats = manager.stats();
  if (trickle) result.trickle_stats = trickle->stats();
  if (injector) {
    result.fault_stats = injector->stats();
    result.fault_events_planned = injector->plan().size();
  }
  if (hash_mode) {
    const auto& hs = hash_decoder.stats();
    result.decoder_stats.packets_decoded = hs.packets_decoded;
    result.decoder_stats.decode_failures = hs.decode_failures + hs.search_failures;
    result.hash_search_failures = hs.search_failures;
    result.hash_search_ambiguous = hs.search_ambiguous;
    result.hash_candidates_per_packet =
        hs.packets_decoded + hs.search_failures > 0
            ? static_cast<double>(hs.candidates_explored) /
                  static_cast<double>(hs.packets_decoded + hs.search_failures)
            : 0.0;
  }
  result.packets_measured = packets_measured;
  result.mean_bits_per_packet =
      packets_measured == 0 ? 0.0
                            : static_cast<double>(measured_bits) /
                                  static_cast<double>(packets_measured);
  result.mean_path_length =
      packets_measured == 0 ? 0.0
                            : static_cast<double>(measured_hops) /
                                  static_cast<double>(packets_measured);
  result.active_links = active_links;
  result.parent_changes_in_window =
      result.net_stats.parent_changes - parent_changes_start;
  const double node_hours = static_cast<double>(node_count) *
                            (static_cast<double>(measure_end - measure_start) / 3.6e9);
  result.parent_changes_per_node_hour =
      node_hours > 0.0 ? static_cast<double>(result.parent_changes_in_window) / node_hours
                       : 0.0;
  {
    const std::uint64_t gen = result.net_stats.packets_generated - generated_start;
    const std::uint64_t del = result.net_stats.packets_delivered - delivered_start;
    result.delivery_ratio_in_window =
        gen == 0 ? 1.0 : static_cast<double>(del) / static_cast<double>(gen);
  }
  result.attempt_stream = std::move(attempt_stream);
  result.epoch_series = std::move(epoch_series);

  if (checker) {
    // The decoder-stats audit additionally requires a full pipeline (no wire
    // budget truncating reports, no Trickle leaving stale forwarder models).
    if (strict_paths && config.dophy.max_wire_bytes == 0 &&
        !config.dophy.use_trickle_dissemination) {
      checker->verify_decoder_stats(result.decoder_stats.decode_failures,
                                    result.decoder_stats.path_truncated,
                                    result.encoder_stats.missing_model_hops);
    }
    result.check_report = checker->finalize();
    checker->uninstall();
    // Globally-armed runs (bench --check) have no caller inspecting the
    // report, so a failed oracle must speak up here and flip the
    // process-wide tally that bench_util turns into a nonzero exit.
    if (!result.check_report.passed() && dophy::check::global_enabled()) {
      std::fprintf(stderr, "%s\n", result.check_report.summary().c_str());
      dophy::check::note_global_failure();
    }
  }

  // Publishes the per-run phase timings into the result and the process
  // global profile; called on every return path.
  const auto finalize_phases = [&] {
    result.phase_seconds = profile.seconds();
    dophy::obs::merge_global_phases(profile);
  };

  // --- Dophy scores -----------------------------------------------------------
  {
    dophy::obs::ObsTimer t(profile, "score");
    MethodResult m;
    m.name = "dophy";
    std::unordered_map<LinkKey, double, LinkKeyHash> est_map;
    for (const auto& [key, est] : dophy_estimator.all_estimates()) est_map[key] = est.loss;
    m.scores = score_map(est_map, truth);
    m.summary = summarize_scores(m.scores, active_links);
    result.methods.push_back(std::move(m));
  }

  if (!config.run_baselines) {
    finalize_phases();
    return result;
  }
  dophy::obs::ObsTimer baselines_timer(profile, "baselines");

  // --- Baseline inputs from traces ---------------------------------------------
  // Snapshot index covering time t: the latest snapshot taken at or before t.
  auto snapshot_at = [&](SimTime t) -> const std::vector<NodeId>* {
    const auto it = std::upper_bound(snapshot_times.begin(), snapshot_times.end(), t);
    if (it == snapshot_times.begin()) return nullptr;
    return &snapshots[static_cast<std::size_t>(it - snapshot_times.begin()) - 1];
  };

  // Per (origin, interval) tallies for the ratio/NNLS methods, and per-packet
  // observations for EM.
  struct OriginInterval {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    const std::vector<NodeId>* parents = nullptr;
  };
  std::unordered_map<std::uint64_t, OriginInterval> tallies;
  std::vector<baseline::PacketObservation> packet_obs;

  const auto& outcomes = net.traces().outcomes();
  const SimTime interval_us = static_cast<SimTime>(config.snapshot_interval_s * 1e6);
  for (std::size_t i = outcomes_start; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    const SimTime created = o.packet.created_at;
    if (created < measure_start || created >= measure_end) continue;
    if (o.packet.origin == kSinkId || o.packet.origin == kInvalidNode) continue;
    const std::vector<NodeId>* parents = snapshot_at(created);
    if (parents == nullptr) continue;
    const auto path = baseline::chase_parents(*parents, o.packet.origin,
                                              config.net.traffic.max_hops);
    if (path.empty()) continue;

    const auto interval_idx =
        static_cast<std::uint64_t>((created - measure_start) / interval_us);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(o.packet.origin) << 32) | interval_idx;
    OriginInterval& tally = tallies[key];
    ++tally.generated;
    if (o.fate == PacketFate::kDelivered) ++tally.delivered;
    tally.parents = parents;

    baseline::PacketObservation obs;
    obs.origin = o.packet.origin;
    obs.path = path;
    obs.delivered = o.fate == PacketFate::kDelivered;
    packet_obs.push_back(std::move(obs));
  }

  std::vector<baseline::PathSample> interval_samples;
  interval_samples.reserve(tallies.size());
  std::unordered_map<NodeId, baseline::PathSample> whole_window;
  for (const auto& [key, tally] : tallies) {
    const auto origin = static_cast<NodeId>(key >> 32);
    baseline::PathSample s;
    s.origin = origin;
    s.path = baseline::chase_parents(*tally.parents, origin, config.net.traffic.max_hops);
    s.generated = tally.generated;
    s.delivered = tally.delivered;
    if (!s.path.empty()) interval_samples.push_back(s);

    baseline::PathSample& w = whole_window[origin];
    w.origin = origin;
    w.generated += tally.generated;
    w.delivered += tally.delivered;
    if (w.path.empty()) w.path = s.path;  // representative path
  }
  std::vector<baseline::PathSample> window_samples;
  window_samples.reserve(whole_window.size());
  for (auto& [origin, s] : whole_window) window_samples.push_back(std::move(s));

  const auto max_attempts = config.net.mac.max_attempts;

  {
    baseline::DeliveryRatioConfig cfg;
    cfg.max_attempts = max_attempts;
    MethodResult m;
    m.name = "delivery-ratio";
    m.scores = score_map(baseline::DeliveryRatioTomography(cfg).estimate(window_samples), truth);
    m.summary = summarize_scores(m.scores, active_links);
    result.methods.push_back(std::move(m));
  }
  {
    baseline::NnlsConfig cfg;
    cfg.max_attempts = max_attempts;
    cfg.min_generated = 3;
    MethodResult m;
    m.name = "nnls";
    m.scores = score_map(baseline::NnlsPathTomography(cfg).estimate(interval_samples), truth);
    m.summary = summarize_scores(m.scores, active_links);
    result.methods.push_back(std::move(m));
  }
  {
    baseline::EmConfig cfg;
    cfg.max_attempts = max_attempts;
    MethodResult m;
    m.name = "em";
    m.scores = score_map(baseline::EmPathTomography(cfg).estimate(packet_obs), truth);
    m.summary = summarize_scores(m.scores, active_links);
    result.methods.push_back(std::move(m));
  }

  baselines_timer.stop();
  finalize_phases();
  return result;
}

}  // namespace dophy::tomo
