#pragma once

// Sink-side Dophy decoder: reconstructs the exact per-packet path and the
// per-hop (possibly censored) transmission counts from the finalized
// arithmetic stream.
//
// Delivered reports are untrusted input — fault injection (and a real
// deployment's radio) can truncate, bit-flip, or strip them — so decode
// returns a typed DecodeResult: a path, or a classified error.  A hostile
// blob must never crash the sink or leak garbage hops into the estimators.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "dophy/net/packet.hpp"
#include "dophy/tomo/measurement.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

/// One decoded hop: the packet moved from `sender` to `receiver` and the
/// winning frame carried this transmission count.
struct DecodedHop {
  dophy::net::NodeId sender = dophy::net::kInvalidNode;
  dophy::net::NodeId receiver = dophy::net::kInvalidNode;
  HopObservation observation;
};

struct DecodedPath {
  dophy::net::NodeId origin = dophy::net::kInvalidNode;
  std::vector<DecodedHop> hops;
  /// Lifecycle span of the packet this path was decoded from and the decode
  /// record itself (obs::SpanTrace ids; 0 when tracing is off).  Carried so
  /// the model window that consumes the path can link back causally.
  std::uint64_t packet_span = 0;
  std::uint64_t decode_span = 0;
};

/// Why a delivered report failed to decode.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kReportLost,           ///< measurement field stripped in transit (blob.dropped)
  kUnknownModelVersion,  ///< sink has no model for the blob's version
  kUnfinalized,          ///< suspended coder state still attached
  kPathTruncated,        ///< a hop ran out of payload budget (blob.truncated)
  kWireTruncated,        ///< buffer shorter than the declared bit length
  kMalformedStream,      ///< arithmetic stream decoded to an impossible state
  kInvalidHop,           ///< decoded a hop the topology cannot carry
  kNoSinkTerminal,       ///< path never reached the sink within max_hops
};

[[nodiscard]] std::string_view to_string(DecodeError error) noexcept;

/// Either a DecodedPath or a DecodeError.  Mirrors the std::optional surface
/// (has_value / operator bool / operator* / operator->) so existing callers
/// that only care about success keep working unchanged.
class DecodeResult {
 public:
  DecodeResult(DecodedPath path)  // NOLINT(google-explicit-constructor)
      : path_(std::move(path)) {}
  DecodeResult(DecodeError error)  // NOLINT(google-explicit-constructor)
      : error_(error) {}

  [[nodiscard]] bool has_value() const noexcept { return path_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const DecodedPath& operator*() const noexcept { return *path_; }
  [[nodiscard]] DecodedPath& operator*() noexcept { return *path_; }
  [[nodiscard]] const DecodedPath* operator->() const noexcept { return &*path_; }
  [[nodiscard]] DecodedPath* operator->() noexcept { return &*path_; }
  [[nodiscard]] const DecodedPath& value() const { return path_.value(); }

  /// kNone iff has_value().
  [[nodiscard]] DecodeError error() const noexcept { return error_; }

 private:
  std::optional<DecodedPath> path_;
  DecodeError error_ = DecodeError::kNone;
};

struct DophyDecoderStats {
  std::uint64_t packets_decoded = 0;
  std::uint64_t decode_failures = 0;  ///< sum of the per-kind counts below
  std::uint64_t reports_lost = 0;
  std::uint64_t unknown_model_version = 0;
  std::uint64_t unfinalized = 0;
  std::uint64_t path_truncated = 0;
  std::uint64_t wire_truncated = 0;
  std::uint64_t malformed_stream = 0;
  std::uint64_t invalid_hop = 0;
  std::uint64_t no_sink_terminal = 0;
};

class DophyDecoder {
 public:
  /// `sink_store` is the sink's model store (receives every version the
  /// moment it is published, before any dissemination delay).
  DophyDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
               std::uint16_t max_hops = 64);

  /// Optional structural check on decoded hops: return false when the
  /// topology cannot carry (sender -> receiver) and the decode fails with
  /// kInvalidHop.  Catches bit-flipped streams that still parse.
  using HopValidator = std::function<bool(dophy::net::NodeId sender,
                                          dophy::net::NodeId receiver)>;
  void set_hop_validator(HopValidator validator) { validator_ = std::move(validator); }

  /// Decodes a delivered packet's blob; a typed error on any failure.
  [[nodiscard]] DecodeResult decode(const dophy::net::Packet& packet);

  [[nodiscard]] const DophyDecoderStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] DecodeResult fail(const dophy::net::Packet& packet, DecodeError error);

  const ModelStore* store_;
  SymbolMapper mapper_;
  std::uint16_t max_hops_;
  HopValidator validator_;
  DophyDecoderStats stats_;
};

}  // namespace dophy::tomo
