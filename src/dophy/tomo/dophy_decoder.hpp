#pragma once

// Sink-side Dophy decoder: reconstructs the exact per-packet path and the
// per-hop (possibly censored) transmission counts from the finalized
// arithmetic stream.

#include <cstdint>
#include <optional>
#include <vector>

#include "dophy/net/packet.hpp"
#include "dophy/tomo/measurement.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

/// One decoded hop: the packet moved from `sender` to `receiver` and the
/// winning frame carried this transmission count.
struct DecodedHop {
  dophy::net::NodeId sender = dophy::net::kInvalidNode;
  dophy::net::NodeId receiver = dophy::net::kInvalidNode;
  HopObservation observation;
};

struct DecodedPath {
  dophy::net::NodeId origin = dophy::net::kInvalidNode;
  std::vector<DecodedHop> hops;
};

struct DophyDecoderStats {
  std::uint64_t packets_decoded = 0;
  std::uint64_t decode_failures = 0;  ///< unknown version / corrupt / overlong
};

class DophyDecoder {
 public:
  /// `sink_store` is the sink's model store (receives every version the
  /// moment it is published, before any dissemination delay).
  DophyDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
               std::uint16_t max_hops = 64);

  /// Decodes a delivered packet's blob; nullopt on any failure (missing
  /// model version, corrupt stream, runaway path).
  [[nodiscard]] std::optional<DecodedPath> decode(const dophy::net::Packet& packet);

  [[nodiscard]] const DophyDecoderStats& stats() const noexcept { return stats_; }

 private:
  const ModelStore* store_;
  SymbolMapper mapper_;
  std::uint16_t max_hops_;
  DophyDecoderStats stats_;
};

}  // namespace dophy::tomo
