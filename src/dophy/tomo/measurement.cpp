#include "dophy/tomo/measurement.hpp"

#include <stdexcept>

#include "dophy/coding/varint.hpp"

namespace dophy::tomo {

ModelSet::ModelSet(std::uint8_t version_, dophy::coding::StaticModel id_model_,
                   dophy::coding::StaticModel retx_model_)
    : version(version_), id_model(std::move(id_model_)), retx_model(std::move(retx_model_)) {}

ModelSet ModelSet::bootstrap(std::size_t node_count, std::uint32_t retx_alphabet) {
  return ModelSet(0, dophy::coding::StaticModel(node_count),
                  dophy::coding::StaticModel(retx_alphabet));
}

std::vector<std::uint8_t> ModelSet::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(version);
  const auto id_bytes = id_model.serialize();
  const auto retx_bytes = retx_model.serialize();
  dophy::coding::write_varint(out, id_bytes.size());
  out.insert(out.end(), id_bytes.begin(), id_bytes.end());
  dophy::coding::write_varint(out, retx_bytes.size());
  out.insert(out.end(), retx_bytes.begin(), retx_bytes.end());
  return out;
}

ModelSet ModelSet::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) throw std::runtime_error("ModelSet::deserialize: empty");
  const std::uint8_t version = bytes[0];
  std::size_t offset = 1;
  const std::uint64_t id_len = dophy::coding::read_varint(bytes, offset);
  if (offset + id_len > bytes.size()) throw std::runtime_error("ModelSet: truncated id model");
  auto id_model = dophy::coding::StaticModel::deserialize(bytes.subspan(offset,
                                                                        static_cast<std::size_t>(id_len)));
  offset += static_cast<std::size_t>(id_len);
  const std::uint64_t retx_len = dophy::coding::read_varint(bytes, offset);
  if (offset + retx_len > bytes.size()) throw std::runtime_error("ModelSet: truncated retx model");
  auto retx_model = dophy::coding::StaticModel::deserialize(
      bytes.subspan(offset, static_cast<std::size_t>(retx_len)));
  return ModelSet(version, std::move(id_model), std::move(retx_model));
}

std::size_t ModelSet::wire_size() const { return serialize().size(); }

ModelStore::ModelStore(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("ModelStore: zero capacity");
}

void ModelStore::install(ModelSet set) {
  sets_.emplace(install_counter_++, std::move(set));
  while (sets_.size() > capacity_) sets_.erase(sets_.begin());
}

std::uint8_t ModelStore::current_version() const {
  if (sets_.empty()) throw std::logic_error("ModelStore: empty store");
  return sets_.rbegin()->second.version;
}

const ModelSet* ModelStore::find(std::uint8_t version) const {
  // Newest first: version numbers wrap at 256, so prefer the most recent
  // install with a matching tag.
  for (auto it = sets_.rbegin(); it != sets_.rend(); ++it) {
    if (it->second.version == version) return &it->second;
  }
  return nullptr;
}

}  // namespace dophy::tomo
