#pragma once

// Sufficient statistics and closed forms for the right-censored geometric
// link-loss estimator — the math shared by the batch LinkLossEstimator
// (link_inference.hpp) and the streaming sink's incremental estimator
// (dophy/sink/incremental_mle.hpp).
//
// A hop observation over a link is Geometric(q) in the per-attempt success
// probability q = 1 - p, right-censored at the aggregation threshold K.  The
// whole likelihood is summarized by three counts (uncensored observations,
// their attempt sum, censored observations), so estimates can be maintained
// incrementally: fold each observation into the stats and evaluate the
// closed form on demand — no recompute over past reports.  Both estimator
// front-ends call the same accumulate/estimate code, which is what makes the
// streaming differential campaign ("incremental == batch") meaningful.

#include <cstdint>

#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

/// Point estimate for one link (shared by every estimator front-end).
struct LinkEstimate {
  double loss = 0.0;        ///< p_hat, per-attempt loss ratio
  double stderr_ = 0.0;     ///< Wald standard error of p_hat
  double samples = 0.0;     ///< effective (possibly decayed) observation count
};

/// Sufficient statistics of the censored-geometric likelihood for one link.
/// The fields stay integral until a decay is applied, so accumulation order
/// never changes the values (double adds of small integers are exact) — the
/// property the sink's arbitrary-interleaving differential tests rely on.
struct GeometricSuffStats {
  double uncensored = 0.0;    ///< observations with an exact attempt count
  double attempts_sum = 0.0;  ///< sum of attempts over uncensored observations
  double censored = 0.0;      ///< observations censored at K

  /// Folds one hop observation in.
  void observe(const HopObservation& obs) noexcept {
    if (obs.censored) {
      censored += 1.0;
    } else {
      uncensored += 1.0;
      attempts_sum += static_cast<double>(obs.attempts);
    }
  }

  /// Scales every count by `factor` (tracking-epoch decay).
  void decay(double factor) noexcept {
    uncensored *= factor;
    attempts_sum *= factor;
    censored *= factor;
  }

  /// Adds another stat block (shard merge / snapshot restore).
  void merge(const GeometricSuffStats& other) noexcept {
    uncensored += other.uncensored;
    attempts_sum += other.attempts_sum;
    censored += other.censored;
  }

  /// Total (possibly decayed) observation mass.
  [[nodiscard]] double total() const noexcept { return uncensored + censored; }

  /// True when the link has enough mass to report an estimate (the < 0.5
  /// guard keeps fully-decayed ghosts out of all_estimates()).
  [[nodiscard]] bool has_support() const noexcept { return total() >= 0.5; }

  bool operator==(const GeometricSuffStats&) const = default;
};

/// Closed-form estimate from sufficient statistics at censor threshold `k`.
/// With `prior_a`/`prior_b` both zero this is the MLE
///     q_hat = U / (sum_i t_i + C * (K - 1))
/// with a Wald standard error from the observed Fisher information; nonzero
/// priors switch to the Beta(a, b) posterior mean (the geometric likelihood
/// is conjugate).  All-censored stats sit at the likelihood boundary and
/// report the most conservative identifiable value, loss = 1 - 1/K.
[[nodiscard]] LinkEstimate estimate_censored_geometric(const GeometricSuffStats& stats,
                                                       std::uint32_t k,
                                                       double prior_a = 0.0,
                                                       double prior_b = 0.0);

}  // namespace dophy::tomo
