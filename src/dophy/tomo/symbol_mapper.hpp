#pragma once

// Transmission-count -> symbol mapping with tail aggregation.
//
// Dophy's first optimization: per-hop transmission counts are Geometric, so
// nearly all mass sits at 1-3 attempts; counts >= K are collapsed into a
// single *censored* symbol.  This shrinks the coder's alphabet (cheaper
// symbols, smaller disseminated models) and the sink compensates with a
// right-censored geometric MLE instead of losing accuracy.

#include <cstdint>

namespace dophy::tomo {

class SymbolMapper {
 public:
  /// `censor_threshold` K: counts in [1, K-1] map to exact symbols 0..K-2;
  /// counts >= K map to the censored symbol K-1.  K must be >= 2.  Choosing
  /// K > max MAC attempts effectively disables aggregation.
  explicit SymbolMapper(std::uint32_t censor_threshold);

  /// Alphabet size (== K).
  [[nodiscard]] std::uint32_t alphabet_size() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t censor_threshold() const noexcept { return k_; }

  /// Maps a transmission count (>= 1) to its symbol.
  [[nodiscard]] std::uint32_t to_symbol(std::uint32_t attempts) const;

  /// True if `symbol` is the aggregated ">= K" symbol.
  [[nodiscard]] bool is_censored(std::uint32_t symbol) const;

  /// Exact transmission count for an uncensored symbol; for the censored
  /// symbol returns K (the lower bound).
  [[nodiscard]] std::uint32_t to_attempts(std::uint32_t symbol) const;

 private:
  std::uint32_t k_;
};

/// One decoded per-hop observation at the sink.
struct HopObservation {
  std::uint32_t attempts = 1;  ///< exact, or the lower bound K if censored
  bool censored = false;
};

}  // namespace dophy::tomo
