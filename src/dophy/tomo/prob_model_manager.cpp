#include "dophy/tomo/prob_model_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "dophy/common/logging.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::tomo {

ProbModelManager::ProbModelManager(const ModelUpdateConfig& config, std::size_t node_count,
                                   const SymbolMapper& mapper, PublishFn publish)
    : config_(config), node_count_(node_count), mapper_(mapper), publish_(std::move(publish)) {
  if (node_count < 2) throw std::invalid_argument("ProbModelManager: need >= 2 nodes");
  if (!publish_) throw std::invalid_argument("ProbModelManager: publish callback required");
  id_counts_.assign(node_count, 0);
  retx_counts_.assign(mapper_.alphabet_size(), 0);
  deployed_id_counts_.assign(node_count, 1);  // bootstrap models are uniform
  deployed_retx_counts_.assign(mapper_.alphabet_size(), 1);
}

void ProbModelManager::observe(const DecodedPath& path) {
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    // Lazily open the window span on the first decoded path it absorbs, and
    // link each decode into it so the eventual publish has a causal fan-in.
    if (window_span_ == 0) {
      window_span_ = spans.begin("model_window", static_cast<std::uint64_t>(window_start_),
                                 [&](dophy::obs::EventBuilder& b) {
                                   b.u64("version", version_);
                                 });
    }
    spans.link(path.decode_span, window_span_, static_cast<std::uint64_t>(last_tick_));
  }
  for (const DecodedHop& hop : path.hops) {
    if (hop.receiver < node_count_) ++id_counts_[hop.receiver];
    const std::uint32_t symbol =
        hop.observation.censored ? mapper_.alphabet_size() - 1
                                 : mapper_.to_symbol(hop.observation.attempts);
    ++retx_counts_[symbol];
    ++window_hops_;
    ++stats_.hops_observed;
  }
}

double ProbModelManager::current_kl_bits() const {
  double kl = dophy::common::kl_divergence_bits(retx_counts_, deployed_retx_counts_);
  if (config_.update_id_model) {
    kl += dophy::common::kl_divergence_bits(id_counts_, deployed_id_counts_);
  }
  return kl;
}

ModelSet ProbModelManager::build_set(std::uint8_t version) const {
  auto smoothed = [&](const std::vector<std::uint64_t>& counts) {
    std::vector<std::uint64_t> out(counts.size());
    const auto prior = static_cast<std::uint64_t>(std::max(0.0, config_.smoothing) * 16.0);
    for (std::size_t i = 0; i < counts.size(); ++i) out[i] = counts[i] * 16 + prior;
    return out;
  };
  const std::vector<std::uint64_t> id_src =
      config_.update_id_model ? smoothed(id_counts_) : deployed_id_counts_;
  const std::uint32_t precision =
      std::max<std::uint32_t>(config_.model_precision,
                              static_cast<std::uint32_t>(node_count_) * 2);
  return ModelSet(version, dophy::coding::StaticModel(id_src, precision),
                  dophy::coding::StaticModel(smoothed(retx_counts_), precision));
}

void ProbModelManager::publish_now() {
  const auto next_version = static_cast<std::uint8_t>(version_ + 1);
  ModelSet set = build_set(next_version);
  stats_.last_model_bytes = static_cast<double>(set.wire_size());
  version_ = next_version;
  // Remember what distribution the deployed models encode for future KL.
  if (config_.update_id_model) deployed_id_counts_ = id_counts_;
  deployed_retx_counts_ = retx_counts_;
  for (auto& c : deployed_id_counts_) c = std::max<std::uint64_t>(c, 1);
  for (auto& c : deployed_retx_counts_) c = std::max<std::uint64_t>(c, 1);
  ++stats_.updates_published;
  {
    auto& r = dophy::obs::Registry::global();
    static const auto c_updates = r.counter("tomo.model.updates");
    static const auto c_bytes = r.counter("tomo.model.bytes");
    c_updates.inc();
    c_bytes.inc(set.wire_size());
  }
  DOPHY_INFO("model update: published v%u (%zu bytes, kl=%.3f bits, %llu window hops)",
             static_cast<unsigned>(next_version), set.wire_size(), stats_.last_kl_bits,
             static_cast<unsigned long long>(window_hops_));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kModelUpdate)) {
    tr.event(dophy::obs::EventKind::kModelUpdate, static_cast<std::uint64_t>(last_tick_))
        .u64("version", next_version)
        .u64("bytes", set.wire_size())
        .f64("kl_bits", stats_.last_kl_bits)
        .u64("window_hops", window_hops_);
  }
  auto& spans = dophy::obs::SpanTrace::global();
  if (spans.enabled()) {
    const auto t = static_cast<std::uint64_t>(last_tick_);
    const auto update_span =
        spans.instant("model_update", t, [&](dophy::obs::EventBuilder& b) {
          b.u64("version", next_version).u64("window_hops", window_hops_);
        });
    spans.link(window_span_, update_span, t);
    spans.end(window_span_, t);
  }
  publish_(set);
  reset_window();
}

void ProbModelManager::reset_window() {
  std::fill(id_counts_.begin(), id_counts_.end(), 0);
  std::fill(retx_counts_.begin(), retx_counts_.end(), 0);
  window_hops_ = 0;
  window_span_ = 0;
}

void ProbModelManager::on_tick(dophy::net::SimTime now) {
  ++stats_.ticks;
  const dophy::net::SimTime window = now - window_start_;
  last_tick_ = now;
  stats_.last_kl_bits = current_kl_bits();

  switch (config_.policy) {
    case ModelUpdateConfig::Policy::kStatic:
      return;
    case ModelUpdateConfig::Policy::kPeriodic:
      if (window_hops_ >= config_.min_hop_samples) {
        publish_now();
        window_start_ = now;
      }
      return;
    case ModelUpdateConfig::Policy::kAdaptive: {
      if (window_hops_ < config_.min_hop_samples || window <= 0) return;
      const double hops_per_s =
          static_cast<double>(window_hops_) / (static_cast<double>(window) / 1e6);
      const double savings_bits =
          hops_per_s * stats_.last_kl_bits * config_.adaptive_horizon_s;
      // Projected flood cost of the candidate set.
      const ModelSet candidate = build_set(static_cast<std::uint8_t>(version_ + 1));
      const double cost_bits =
          static_cast<double>(candidate.wire_size()) * 8.0 * static_cast<double>(node_count_);
      if (savings_bits > cost_bits) {
        publish_now();
        window_start_ = now;
      }
      return;
    }
  }
}

}  // namespace dophy::tomo
