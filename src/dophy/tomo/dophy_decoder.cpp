#include "dophy/tomo/dophy_decoder.hpp"

#include <algorithm>

#include "dophy/coding/arith.hpp"
#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::tomo {

using dophy::net::kSinkId;
using dophy::net::NodeId;

std::string_view to_string(DecodeError error) noexcept {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kReportLost: return "report_lost";
    case DecodeError::kUnknownModelVersion: return "unknown_model_version";
    case DecodeError::kUnfinalized: return "unfinalized";
    case DecodeError::kPathTruncated: return "truncated";
    case DecodeError::kWireTruncated: return "wire_truncated";
    case DecodeError::kMalformedStream: return "stream_error";
    case DecodeError::kInvalidHop: return "invalid_hop";
    case DecodeError::kNoSinkTerminal: return "no_sink_terminal";
  }
  return "?";
}

namespace {

std::uint64_t& stat_for(DophyDecoderStats& stats, DecodeError error) {
  switch (error) {
    case DecodeError::kReportLost: return stats.reports_lost;
    case DecodeError::kUnknownModelVersion: return stats.unknown_model_version;
    case DecodeError::kUnfinalized: return stats.unfinalized;
    case DecodeError::kPathTruncated: return stats.path_truncated;
    case DecodeError::kWireTruncated: return stats.wire_truncated;
    case DecodeError::kMalformedStream: return stats.malformed_stream;
    case DecodeError::kInvalidHop: return stats.invalid_hop;
    case DecodeError::kNoSinkTerminal: return stats.no_sink_terminal;
    case DecodeError::kNone: break;
  }
  return stats.decode_failures;  // unreachable for real errors
}

/// Accounts one decode failure: registry counter, debug log, trace event.
void note_decode_failure(const dophy::net::Packet& packet, std::string_view reason) {
  static const auto c_fail = dophy::obs::Registry::global().counter("tomo.decode.failures");
  c_fail.inc();
  DOPHY_DEBUG("decode failure: origin %u seq %u (%.*s, model v%u)",
              static_cast<unsigned>(packet.origin), static_cast<unsigned>(packet.seq),
              static_cast<int>(reason.size()), reason.data(),
              static_cast<unsigned>(packet.blob.model_version));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kDecodeFailure)) {
    tr.event(dophy::obs::EventKind::kDecodeFailure,
             static_cast<std::uint64_t>(packet.created_at))
        .u64("origin", packet.origin)
        .u64("seq", packet.seq)
        .str("reason", reason)
        .u64("model_version", packet.blob.model_version);
  }
}

}  // namespace

DophyDecoder::DophyDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
                           std::uint16_t max_hops)
    : store_(&sink_store), mapper_(mapper), max_hops_(max_hops) {}

DecodeResult DophyDecoder::fail(const dophy::net::Packet& packet, DecodeError error) {
  ++stats_.decode_failures;
  ++stat_for(stats_, error);
  note_decode_failure(packet, to_string(error));
  return error;
}

DecodeResult DophyDecoder::decode(const dophy::net::Packet& packet) {
  if (packet.blob.dropped) {
    return fail(packet, DecodeError::kReportLost);
  }
  const ModelSet* models = store_->find(packet.blob.model_version);
  if (models == nullptr) {
    return fail(packet, DecodeError::kUnknownModelVersion);
  }
  if (packet.blob.state_size != 0 || packet.blob.truncated) {
    // Blob was never finalized (a forwarder skipped encoding) or ran out of
    // payload budget mid-path; the stream cannot be decoded soundly.
    return fail(packet, packet.blob.truncated ? DecodeError::kPathTruncated
                                              : DecodeError::kUnfinalized);
  }
  if (packet.blob.logical_bits > packet.blob.bytes.size() * 8) {
    // Buffer shorter than its declared bit length: the report lost bytes in
    // transit.  The decoder clamps to the buffer so decoding would not read
    // out of bounds, but the zero tail would decode to plausible garbage.
    return fail(packet, DecodeError::kWireTruncated);
  }

  DecodedPath path;
  path.origin = packet.origin;
  path.packet_span = packet.span;

  // Batched decode: one call pulls the whole (id, retx) symbol stream on the
  // static-model fast path.  Validation and symbol mapping run afterwards
  // over the decoded pairs, in stream order, so error precedence matches the
  // per-hop formulation: an invalid hop reported before a later stream error.
  std::vector<dophy::coding::PathSymbol> symbols;
  symbols.reserve(std::min<std::size_t>(max_hops_, 32));
  bool saw_terminal = false;
  bool malformed = false;
  try {
    dophy::coding::RangeDecoder dec(packet.blob.bytes, 0, packet.blob.logical_bits / 8);
    saw_terminal = dophy::coding::decode_path(dec, models->id_model, models->retx_model,
                                              kSinkId, max_hops_, symbols);
  } catch (const std::exception&) {
    malformed = true;
  }

  NodeId prev = packet.origin;
  for (const dophy::coding::PathSymbol& sym : symbols) {
    const auto receiver = static_cast<NodeId>(sym.receiver);
    if (validator_ && !validator_(prev, receiver)) {
      return fail(packet, DecodeError::kInvalidHop);
    }
    DecodedHop decoded;
    decoded.sender = prev;
    decoded.receiver = receiver;
    decoded.observation.censored = mapper_.is_censored(sym.retx);
    decoded.observation.attempts = mapper_.to_attempts(sym.retx);
    path.hops.push_back(decoded);
    prev = receiver;
  }
  if (malformed) {
    return fail(packet, DecodeError::kMalformedStream);
  }
  if (!saw_terminal) {
    return fail(packet, DecodeError::kNoSinkTerminal);
  }
  ++stats_.packets_decoded;
  static const auto c_ok = dophy::obs::Registry::global().counter("tomo.decode.ok");
  c_ok.inc();
  return path;
}

}  // namespace dophy::tomo
