#include "dophy/tomo/dophy_decoder.hpp"

#include "dophy/coding/arith.hpp"
#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::tomo {

using dophy::net::kSinkId;
using dophy::net::NodeId;

namespace {

/// Accounts one decode failure: registry counter, debug log, trace event.
void note_decode_failure(const dophy::net::Packet& packet, const char* reason) {
  static const auto c_fail = dophy::obs::Registry::global().counter("tomo.decode.failures");
  c_fail.inc();
  DOPHY_DEBUG("decode failure: origin %u seq %u (%s, model v%u)",
              static_cast<unsigned>(packet.origin), static_cast<unsigned>(packet.seq), reason,
              static_cast<unsigned>(packet.blob.model_version));
  auto& tr = dophy::obs::EventTrace::global();
  if (tr.enabled(dophy::obs::EventKind::kDecodeFailure)) {
    tr.event(dophy::obs::EventKind::kDecodeFailure,
             static_cast<std::uint64_t>(packet.created_at))
        .u64("origin", packet.origin)
        .u64("seq", packet.seq)
        .str("reason", reason)
        .u64("model_version", packet.blob.model_version);
  }
}

}  // namespace

DophyDecoder::DophyDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
                           std::uint16_t max_hops)
    : store_(&sink_store), mapper_(mapper), max_hops_(max_hops) {}

std::optional<DecodedPath> DophyDecoder::decode(const dophy::net::Packet& packet) {
  const ModelSet* models = store_->find(packet.blob.model_version);
  if (models == nullptr) {
    ++stats_.decode_failures;
    note_decode_failure(packet, "unknown_model_version");
    return std::nullopt;
  }
  if (packet.blob.state_size != 0 || packet.blob.truncated) {
    // Blob was never finalized (a forwarder skipped encoding) or ran out of
    // payload budget mid-path; the stream cannot be decoded soundly.
    ++stats_.decode_failures;
    note_decode_failure(packet, packet.blob.truncated ? "truncated" : "unfinalized");
    return std::nullopt;
  }

  DecodedPath path;
  path.origin = packet.origin;
  try {
    dophy::coding::ArithmeticDecoder dec(packet.blob.bytes, 0, packet.blob.logical_bits);
    NodeId prev = packet.origin;
    for (std::uint16_t hop = 0; hop < max_hops_; ++hop) {
      const auto receiver = static_cast<NodeId>(dec.decode(models->id_model));
      const auto symbol = static_cast<std::uint32_t>(dec.decode(models->retx_model));
      DecodedHop decoded;
      decoded.sender = prev;
      decoded.receiver = receiver;
      decoded.observation.censored = mapper_.is_censored(symbol);
      decoded.observation.attempts = mapper_.to_attempts(symbol);
      path.hops.push_back(decoded);
      prev = receiver;
      if (receiver == kSinkId) {
        ++stats_.packets_decoded;
        static const auto c_ok = dophy::obs::Registry::global().counter("tomo.decode.ok");
        c_ok.inc();
        return path;
      }
    }
  } catch (const std::exception&) {
    ++stats_.decode_failures;
    note_decode_failure(packet, "stream_error");
    return std::nullopt;
  }
  ++stats_.decode_failures;
  note_decode_failure(packet, "no_sink_terminal");
  return std::nullopt;
}

}  // namespace dophy::tomo
