#include "dophy/tomo/dophy_decoder.hpp"

#include "dophy/coding/arith.hpp"

namespace dophy::tomo {

using dophy::net::kSinkId;
using dophy::net::NodeId;

DophyDecoder::DophyDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
                           std::uint16_t max_hops)
    : store_(&sink_store), mapper_(mapper), max_hops_(max_hops) {}

std::optional<DecodedPath> DophyDecoder::decode(const dophy::net::Packet& packet) {
  const ModelSet* models = store_->find(packet.blob.model_version);
  if (models == nullptr) {
    ++stats_.decode_failures;
    return std::nullopt;
  }
  if (packet.blob.state_size != 0 || packet.blob.truncated) {
    // Blob was never finalized (a forwarder skipped encoding) or ran out of
    // payload budget mid-path; the stream cannot be decoded soundly.
    ++stats_.decode_failures;
    return std::nullopt;
  }

  DecodedPath path;
  path.origin = packet.origin;
  try {
    dophy::coding::ArithmeticDecoder dec(packet.blob.bytes, 0, packet.blob.logical_bits);
    NodeId prev = packet.origin;
    for (std::uint16_t hop = 0; hop < max_hops_; ++hop) {
      const auto receiver = static_cast<NodeId>(dec.decode(models->id_model));
      const auto symbol = static_cast<std::uint32_t>(dec.decode(models->retx_model));
      DecodedHop decoded;
      decoded.sender = prev;
      decoded.receiver = receiver;
      decoded.observation.censored = mapper_.is_censored(symbol);
      decoded.observation.attempts = mapper_.to_attempts(symbol);
      path.hops.push_back(decoded);
      prev = receiver;
      if (receiver == kSinkId) {
        ++stats_.packets_decoded;
        return path;
      }
    }
  } catch (const std::exception&) {
    // fall through to failure accounting
  }
  ++stats_.decode_failures;
  return std::nullopt;
}

}  // namespace dophy::tomo
