#include "dophy/tomo/link_inference.hpp"

#include <algorithm>
#include <stdexcept>

namespace dophy::tomo {

using dophy::net::LinkKey;

LinkLossEstimator::LinkLossEstimator(std::uint32_t censor_threshold, double decay)
    : k_(censor_threshold), decay_(decay) {
  if (censor_threshold < 2) throw std::invalid_argument("LinkLossEstimator: K must be >= 2");
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("LinkLossEstimator: decay must be in (0, 1]");
  }
}

void LinkLossEstimator::observe_path(const DecodedPath& path) {
  for (const DecodedHop& hop : path.hops) {
    observe(LinkKey{hop.sender, hop.receiver}, hop.observation);
  }
}

void LinkLossEstimator::observe(LinkKey link, const HopObservation& obs) {
  stats_[link].observe(obs);
}

void LinkLossEstimator::end_epoch() {
  if (decay_ >= 1.0) return;
  for (auto& [key, c] : stats_) c.decay(decay_);
}

void LinkLossEstimator::set_beta_prior(double a, double b) {
  if (a < 0.0 || b < 0.0) {
    throw std::invalid_argument("LinkLossEstimator::set_beta_prior: negative prior");
  }
  prior_a_ = a;
  prior_b_ = b;
}

std::optional<LinkEstimate> LinkLossEstimator::estimate(LinkKey link) const {
  const auto it = stats_.find(link);
  if (it == stats_.end()) return std::nullopt;
  if (!it->second.has_support()) return std::nullopt;
  return estimate_censored_geometric(it->second, k_, prior_a_, prior_b_);
}

std::vector<std::pair<LinkKey, LinkEstimate>> LinkLossEstimator::all_estimates() const {
  std::vector<std::pair<LinkKey, LinkEstimate>> out;
  out.reserve(stats_.size());
  for (const auto& [key, counts] : stats_) {
    if (!counts.has_support()) continue;
    out.emplace_back(key, estimate_censored_geometric(counts, k_, prior_a_, prior_b_));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

const GeometricSuffStats* LinkLossEstimator::stats(LinkKey link) const {
  const auto it = stats_.find(link);
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace dophy::tomo
