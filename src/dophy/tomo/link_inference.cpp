#include "dophy/tomo/link_inference.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dophy::tomo {

using dophy::net::LinkKey;

LinkLossEstimator::LinkLossEstimator(std::uint32_t censor_threshold, double decay)
    : k_(censor_threshold), decay_(decay) {
  if (censor_threshold < 2) throw std::invalid_argument("LinkLossEstimator: K must be >= 2");
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("LinkLossEstimator: decay must be in (0, 1]");
  }
}

void LinkLossEstimator::observe_path(const DecodedPath& path) {
  for (const DecodedHop& hop : path.hops) {
    observe(LinkKey{hop.sender, hop.receiver}, hop.observation);
  }
}

void LinkLossEstimator::observe(LinkKey link, const HopObservation& obs) {
  Counts& c = stats_[link];
  if (obs.censored) {
    c.censored += 1.0;
  } else {
    c.uncensored += 1.0;
    c.attempts_sum += static_cast<double>(obs.attempts);
  }
}

void LinkLossEstimator::end_epoch() {
  if (decay_ >= 1.0) return;
  for (auto& [key, c] : stats_) {
    c.uncensored *= decay_;
    c.attempts_sum *= decay_;
    c.censored *= decay_;
  }
}

void LinkLossEstimator::set_beta_prior(double a, double b) {
  if (a < 0.0 || b < 0.0) {
    throw std::invalid_argument("LinkLossEstimator::set_beta_prior: negative prior");
  }
  prior_a_ = a;
  prior_b_ = b;
}

LinkEstimate LinkLossEstimator::estimate_from(const Counts& c, std::uint32_t k) const {
  LinkEstimate est;
  est.samples = c.uncensored + c.censored;
  const double denom = c.attempts_sum + c.censored * static_cast<double>(k - 1);
  if (prior_a_ > 0.0 || prior_b_ > 0.0) {
    // Beta posterior mean: successes U + a over trials (sum t_i + C(K-1)) + a + b.
    const double q = (c.uncensored + prior_a_) / (denom + prior_a_ + prior_b_);
    est.loss = 1.0 - std::clamp(q, 1e-9, 1.0);
    const double n = c.uncensored + prior_a_ + prior_b_;
    est.stderr_ = std::sqrt(std::max(q * q * (1.0 - q), 1e-12) / std::max(n, 1.0));
    return est;
  }
  if (c.uncensored <= 0.0) {
    // Every observation censored: the MLE sits at the boundary q = 0; report
    // the most conservative identifiable value instead.
    est.loss = 1.0 - 1.0 / static_cast<double>(k);
    est.stderr_ = 1.0;  // effectively unknown
    return est;
  }
  const double q = std::clamp(c.uncensored / denom, 1e-9, 1.0);
  est.loss = 1.0 - q;
  // Observed Fisher information for q.
  const double failures = (c.attempts_sum - c.uncensored) +
                          c.censored * static_cast<double>(k - 1);
  const double info = c.uncensored / (q * q) +
                      (failures > 0.0 ? failures / ((1.0 - q) * (1.0 - q)) : 0.0);
  est.stderr_ = info > 0.0 ? 1.0 / std::sqrt(info) : 1.0;
  return est;
}

std::optional<LinkEstimate> LinkLossEstimator::estimate(LinkKey link) const {
  const auto it = stats_.find(link);
  if (it == stats_.end()) return std::nullopt;
  if (it->second.uncensored + it->second.censored < 0.5) return std::nullopt;
  return estimate_from(it->second, k_);
}

std::vector<std::pair<LinkKey, LinkEstimate>> LinkLossEstimator::all_estimates() const {
  std::vector<std::pair<LinkKey, LinkEstimate>> out;
  out.reserve(stats_.size());
  for (const auto& [key, counts] : stats_) {
    if (counts.uncensored + counts.censored < 0.5) continue;
    out.emplace_back(key, estimate_from(counts, k_));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace dophy::tomo
