#pragma once

// Scoring of per-link loss estimates against simulator ground truth.

#include <cstdint>
#include <vector>

#include "dophy/net/types.hpp"

namespace dophy::tomo {

/// One scored link: an estimator's output vs. the empirical loss the link
/// actually exhibited over the evaluation window.
struct LinkScore {
  dophy::net::LinkKey link;
  double estimated = 0.0;
  double truth = 0.0;
  std::uint64_t truth_attempts = 0;  ///< ground-truth sample size

  [[nodiscard]] double abs_error() const noexcept {
    return estimated > truth ? estimated - truth : truth - estimated;
  }
};

struct AccuracySummary {
  std::size_t links_scored = 0;
  double mae = 0.0;       ///< mean absolute error
  double rmse = 0.0;
  double mean_rel = 0.0;  ///< mean |err| / truth
  double p50_abs = 0.0;
  double p90_abs = 0.0;
  double max_abs = 0.0;
  double spearman = 0.0;  ///< rank agreement (can the operator find bad links?)
  double coverage = 0.0;  ///< scored links / active links (set by caller)
};

/// Summarizes scores; `active_links` (> 0) sets the coverage denominator.
[[nodiscard]] AccuracySummary summarize_scores(const std::vector<LinkScore>& scores,
                                               std::size_t active_links);

/// Absolute errors of each score (for CDF tabulation).
[[nodiscard]] std::vector<double> abs_errors(const std::vector<LinkScore>& scores);

}  // namespace dophy::tomo
