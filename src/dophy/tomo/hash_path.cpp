#include "dophy/tomo/hash_path.hpp"

#include <stdexcept>

#include "dophy/coding/arith.hpp"
#include "dophy/common/bitio.hpp"

namespace dophy::tomo {

using dophy::coding::RangeCoderState;
using dophy::coding::RangeDecoder;
using dophy::coding::RangeEncoder;
using dophy::net::kSinkId;
using dophy::net::MeasurementBlob;
using dophy::net::NodeId;
using dophy::net::Packet;

std::uint32_t hash_path_step(std::uint32_t hash, NodeId hop) noexcept {
  // Order-sensitive multiplicative mix (Knuth constant), truncated to 24 bits.
  std::uint32_t h = hash * 2654435761u + hop + 0x9e37u;
  h ^= h >> 13;
  return h & kPathHashMask;
}

namespace {

constexpr std::size_t kTrailerSize = RangeCoderState::kSerializedSize + 3;

void trailer_into_blob(MeasurementBlob& blob, const RangeCoderState& state,
                       std::uint32_t hash) {
  const auto coder_bytes = state.serialize();
  std::copy(coder_bytes.begin(), coder_bytes.end(), blob.state.begin());
  blob.state[8] = static_cast<std::uint8_t>(hash >> 16);
  blob.state[9] = static_cast<std::uint8_t>(hash >> 8);
  blob.state[10] = static_cast<std::uint8_t>(hash);
  blob.state_size = kTrailerSize;
}

RangeCoderState coder_from_blob(const MeasurementBlob& blob) {
  if (blob.state_size != kTrailerSize) {
    throw std::runtime_error("HashPath: packet carries no trailer");
  }
  return RangeCoderState::deserialize(
      std::span<const std::uint8_t>(blob.state.data(), RangeCoderState::kSerializedSize));
}

std::uint32_t hash_from_blob(const MeasurementBlob& blob) {
  return (static_cast<std::uint32_t>(blob.state[8]) << 16) |
         (static_cast<std::uint32_t>(blob.state[9]) << 8) | blob.state[10];
}

}  // namespace

HashPathInstrumentation::HashPathInstrumentation(std::size_t node_count,
                                                 const SymbolMapper& mapper)
    : mapper_(mapper) {
  if (node_count < 2) throw std::invalid_argument("HashPathInstrumentation: need >= 2 nodes");
  const ModelSet boot = ModelSet::bootstrap(node_count, mapper_.alphabet_size());
  stores_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    ModelStore store;
    store.install(boot);
    stores_.push_back(std::move(store));
  }
}

void HashPathInstrumentation::on_origin(Packet& packet, NodeId origin,
                                        dophy::net::SimTime /*now*/) {
  const ModelStore& store = stores_.at(origin);
  packet.blob.model_version = store.current_version();
  packet.blob.bytes.clear();
  packet.blob.logical_bits = 0;
  trailer_into_blob(packet.blob, RangeCoderState{}, hash_path_step(0, origin));
  ++stats_.packets_originated;
}

void HashPathInstrumentation::on_hop_received(Packet& packet, NodeId receiver,
                                              NodeId /*sender*/, std::uint32_t attempts,
                                              dophy::net::SimTime /*now*/) {
  if (packet.blob.truncated) return;  // poisoned earlier; sink will drop it
  const ModelStore& store = stores_.at(receiver);
  const ModelSet* models = store.find(packet.blob.model_version);
  if (models == nullptr) {
    // See DophyInstrumentation::on_hop_received: a skipped hop would let the
    // sink mis-resolve; poison the blob instead.
    packet.blob.truncated = true;
    ++stats_.missing_model_hops;
    return;
  }

  // While the packet travels, blob.bytes holds the bare count stream and the
  // coder appends in place; the running hash rides in the trailer.
  const std::size_t bytes_before = packet.blob.bytes.size();
  RangeEncoder enc(packet.blob.bytes, coder_from_blob(packet.blob));
  const std::uint32_t hash =
      hash_path_step(hash_from_blob(packet.blob), receiver);

  enc.encode(models->retx_model, mapper_.to_symbol(attempts));

  std::size_t bits_after = 0;
  if (receiver == kSinkId) {
    enc.finish();
    bits_after = packet.blob.bytes.size() * 8;
    packet.blob.state_size = 0;
    packet.blob.logical_bits = static_cast<std::uint32_t>(bits_after) + kPathHashBits;
    // Final layout: 24-bit hash, then the count stream.
    std::vector<std::uint8_t> bytes;
    bytes.reserve(packet.blob.bytes.size() + 3);
    bytes.push_back(static_cast<std::uint8_t>(hash >> 16));
    bytes.push_back(static_cast<std::uint8_t>(hash >> 8));
    bytes.push_back(static_cast<std::uint8_t>(hash));
    bytes.insert(bytes.end(), packet.blob.bytes.begin(), packet.blob.bytes.end());
    packet.blob.bytes = std::move(bytes);
  } else {
    trailer_into_blob(packet.blob, enc.suspend(), hash);
    bits_after = packet.blob.bytes.size() * 8;
    packet.blob.logical_bits = static_cast<std::uint32_t>(bits_after);
  }

  ++stats_.hops_encoded;
  const std::size_t appended = bits_after - bytes_before * 8;
  stats_.total_bits_appended += appended;
  stats_.retx_bits_appended += appended;
  stats_.bits_per_hop.add(appended);
}

void HashPathInstrumentation::install(NodeId node, const ModelSet& set) {
  stores_.at(node).install(set);
}

const ModelStore& HashPathInstrumentation::store(NodeId node) const {
  return stores_.at(node);
}

HashPathDecoder::HashPathDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
                                 const dophy::net::Topology& topology,
                                 std::uint64_t search_budget)
    : store_(&sink_store),
      mapper_(mapper),
      topology_(&topology),
      hops_to_sink_(topology.hops_to_sink()),
      search_budget_(search_budget) {}

bool HashPathDecoder::search(NodeId current, std::uint32_t hash_so_far,
                             std::uint32_t target_hash, std::size_t hops_left,
                             std::vector<NodeId>& path, std::vector<NodeId>& found,
                             std::uint64_t& budget) const {
  if (budget == 0) return false;
  --budget;
  if (hops_left == 0) {
    if (current == kSinkId && hash_so_far == target_hash) {
      found = path;
      return true;
    }
    return false;
  }
  for (const NodeId next : topology_->neighbors(current)) {
    // BFS lower bound: next must still be able to reach the sink in time.
    if (hops_to_sink_[next] > hops_left - 1) continue;
    path.push_back(next);
    const bool hit = search(next, hash_path_step(hash_so_far, next), target_hash,
                            hops_left - 1, path, found, budget);
    path.pop_back();
    if (hit) return true;
  }
  return false;
}

std::optional<DecodedPath> HashPathDecoder::decode(const Packet& packet) {
  const ModelSet* models = store_->find(packet.blob.model_version);
  if (models == nullptr || packet.blob.state_size != 0 || packet.blob.truncated ||
      packet.blob.logical_bits < kPathHashBits || packet.hop_count == 0) {
    ++stats_.decode_failures;
    return std::nullopt;
  }

  std::vector<HopObservation> observations;
  std::uint32_t target_hash = 0;
  try {
    dophy::common::BitReader head(packet.blob.bytes, kPathHashBits);
    target_hash = static_cast<std::uint32_t>(head.get_bits(kPathHashBits));
    // Count stream starts right after the 3-byte hash header.
    RangeDecoder dec(packet.blob.bytes, kPathHashBits / 8, packet.blob.logical_bits / 8);
    observations.reserve(packet.hop_count);
    for (std::uint16_t i = 0; i < packet.hop_count; ++i) {
      const auto symbol = static_cast<std::uint32_t>(dec.decode(models->retx_model));
      HopObservation obs;
      obs.censored = mapper_.is_censored(symbol);
      obs.attempts = mapper_.to_attempts(symbol);
      observations.push_back(obs);
    }
  } catch (const std::exception&) {
    ++stats_.decode_failures;
    return std::nullopt;
  }

  // Recover the path: a walk of exactly hop_count steps from the origin to
  // the sink whose running hash matches.
  std::vector<NodeId> path;
  std::vector<NodeId> found;
  std::uint64_t budget = search_budget_;
  const std::uint32_t origin_hash = hash_path_step(0, packet.origin);
  const bool hit = search(packet.origin, origin_hash, target_hash, packet.hop_count,
                          path, found, budget);
  stats_.candidates_explored += search_budget_ - budget;
  if (!hit) {
    ++stats_.search_failures;
    return std::nullopt;
  }

  DecodedPath decoded;
  decoded.origin = packet.origin;
  NodeId sender = packet.origin;
  for (std::size_t i = 0; i < found.size(); ++i) {
    DecodedHop hop;
    hop.sender = sender;
    hop.receiver = found[i];
    hop.observation = observations[i];
    decoded.hops.push_back(hop);
    sender = found[i];
  }
  ++stats_.packets_decoded;
  return decoded;
}

}  // namespace dophy::tomo
