#include "dophy/tomo/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "dophy/common/stats.hpp"

namespace dophy::tomo {

AccuracySummary summarize_scores(const std::vector<LinkScore>& scores,
                                 std::size_t active_links) {
  AccuracySummary s;
  s.links_scored = scores.size();
  if (active_links > 0) {
    s.coverage = static_cast<double>(scores.size()) / static_cast<double>(active_links);
  }
  if (scores.empty()) return s;

  std::vector<double> errs;
  std::vector<double> est;
  std::vector<double> truth;
  errs.reserve(scores.size());
  est.reserve(scores.size());
  truth.reserve(scores.size());
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double sum_rel = 0.0;
  for (const LinkScore& sc : scores) {
    const double e = sc.abs_error();
    errs.push_back(e);
    est.push_back(sc.estimated);
    truth.push_back(sc.truth);
    sum_abs += e;
    sum_sq += e * e;
    sum_rel += sc.truth > 1e-9 ? e / sc.truth : 0.0;
  }
  const double n = static_cast<double>(scores.size());
  s.mae = sum_abs / n;
  s.rmse = std::sqrt(sum_sq / n);
  s.mean_rel = sum_rel / n;
  s.p50_abs = dophy::common::quantile(errs, 0.5);
  s.p90_abs = dophy::common::quantile(errs, 0.9);
  s.max_abs = *std::max_element(errs.begin(), errs.end());
  s.spearman = dophy::common::spearman(est, truth);
  return s;
}

std::vector<double> abs_errors(const std::vector<LinkScore>& scores) {
  std::vector<double> errs;
  errs.reserve(scores.size());
  for (const LinkScore& sc : scores) errs.push_back(sc.abs_error());
  return errs;
}

}  // namespace dophy::tomo
