#pragma once

// Alternative path-recording mode: instead of arithmetic-coding each hop's
// node id (Dophy's choice), the packet carries a fixed-size *path hash*
// (order-sensitive mix of the receiver ids) plus the count-only arithmetic
// stream; the sink recovers the path by searching the known neighbor graph
// for an origin->sink walk of the right length whose hash matches — the
// PathZip-style design from the same research lineage.
//
// Trade-off this module lets the benches quantify: the hash costs a fixed
// 3 bytes per packet (cheaper than per-hop ids beyond ~4 hops) but path
// recovery becomes a search that can fail (budget exhausted) or — with
// probability ~2^-24 per candidate — return a wrong path.

#include <cstdint>
#include <optional>
#include <vector>

#include "dophy/common/histogram.hpp"
#include "dophy/net/packet.hpp"
#include "dophy/net/topology.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/measurement.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::tomo {

/// Order-sensitive 24-bit path hash.
[[nodiscard]] std::uint32_t hash_path_step(std::uint32_t hash, dophy::net::NodeId hop) noexcept;
inline constexpr std::uint32_t kPathHashBits = 24;
inline constexpr std::uint32_t kPathHashMask = (1u << kPathHashBits) - 1;

/// Node-side instrumentation for hash mode.  Blob layout at the sink:
/// [24-bit hash][arithmetic count stream]; in flight the running hash rides
/// in the state trailer after the coder registers.
class HashPathInstrumentation final : public dophy::net::PacketInstrumentation {
 public:
  HashPathInstrumentation(std::size_t node_count, const SymbolMapper& mapper);

  void on_origin(dophy::net::Packet& packet, dophy::net::NodeId origin,
                 dophy::net::SimTime now) override;
  void on_hop_received(dophy::net::Packet& packet, dophy::net::NodeId receiver,
                       dophy::net::NodeId sender, std::uint32_t attempts,
                       dophy::net::SimTime now) override;

  void install(dophy::net::NodeId node, const ModelSet& set);
  [[nodiscard]] const ModelStore& store(dophy::net::NodeId node) const;
  [[nodiscard]] const DophyEncoderStats& stats() const noexcept { return stats_; }

 private:
  SymbolMapper mapper_;
  std::vector<ModelStore> stores_;
  DophyEncoderStats stats_;
};

struct HashPathDecoderStats {
  std::uint64_t packets_decoded = 0;
  std::uint64_t decode_failures = 0;   ///< stream errors / unknown version
  std::uint64_t search_failures = 0;   ///< no matching path within budget
  std::uint64_t search_ambiguous = 0;  ///< >1 matching path (first kept)
  std::uint64_t candidates_explored = 0;
};

/// Sink-side decoder for hash mode: decodes the counts, then searches the
/// neighbor graph for the matching path.
class HashPathDecoder {
 public:
  /// `topology` supplies the neighbor graph (a deployment learns it from
  /// neighborhood reports; the simulator hands it over directly).
  HashPathDecoder(const ModelStore& sink_store, const SymbolMapper& mapper,
                  const dophy::net::Topology& topology,
                  std::uint64_t search_budget = 200000);

  [[nodiscard]] std::optional<DecodedPath> decode(const dophy::net::Packet& packet);

  [[nodiscard]] const HashPathDecoderStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] bool search(dophy::net::NodeId current, std::uint32_t hash_so_far,
                            std::uint32_t target_hash, std::size_t hops_left,
                            std::vector<dophy::net::NodeId>& path,
                            std::vector<dophy::net::NodeId>& found,
                            std::uint64_t& budget) const;

  const ModelStore* store_;
  SymbolMapper mapper_;
  const dophy::net::Topology* topology_;
  std::vector<std::uint16_t> hops_to_sink_;
  std::uint64_t search_budget_;
  HashPathDecoderStats stats_;
};

}  // namespace dophy::tomo
