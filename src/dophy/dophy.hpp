#pragma once

// Umbrella header: the public API a downstream user needs for the common
// workflows (run experiments, wire a live measurement plane, analyze
// traces).  Individual headers remain includable for finer-grained builds.

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/common/table.hpp"

#include "dophy/coding/arith.hpp"
#include "dophy/coding/codec.hpp"
#include "dophy/coding/freq_model.hpp"

#include "dophy/fault/fault_plan.hpp"
#include "dophy/fault/injector.hpp"

#include "dophy/net/energy.hpp"
#include "dophy/net/network.hpp"
#include "dophy/net/trickle.hpp"

#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/hash_path.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/metrics.hpp"
#include "dophy/tomo/pipeline.hpp"

#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/eval/trace_io.hpp"
