#include "dophy/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace dophy::common {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::submit(SmallTask task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // defined no-op: the task is dropped, not run
    if (!workers_.empty()) {
      tasks_.push(std::move(task));
      ++in_flight_;
      task_ready_.notify_one();
      return;
    }
  }
  // Inline pool: no worker will ever drain the queue; run on the caller.
  task();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    SmallTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool.worker_count() == 0) {  // inline pool: chunking would compute 0 chunks
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Chunk so tiny bodies don't drown in queue traffic.
  const std::size_t chunks = std::min(count, pool.worker_count() * 4);
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&next, count, &body] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& inline_executor() {
  static ThreadPool pool{ThreadPool::inline_t{}};
  return pool;
}

}  // namespace dophy::common
