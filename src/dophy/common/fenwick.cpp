#include "dophy/common/fenwick.hpp"

#include <bit>
#include <stdexcept>

namespace dophy::common {

FenwickTree::FenwickTree(std::size_t size) { reset(size); }

void FenwickTree::reset(std::size_t size) {
  size_ = size;
  tree_.assign(size + 1, 0);
}

void FenwickTree::add(std::size_t index, std::int64_t delta) {
  if (index >= size_) throw std::out_of_range("FenwickTree::add: index out of range");
  for (std::size_t i = index + 1; i <= size_; i += i & (~i + 1)) {
    tree_[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree_[i]) + delta);
  }
}

std::uint64_t FenwickTree::prefix_sum(std::size_t index) const {
  if (index > size_) throw std::out_of_range("FenwickTree::prefix_sum: index out of range");
  std::uint64_t sum = 0;
  for (std::size_t i = index; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

std::uint64_t FenwickTree::get(std::size_t index) const {
  return prefix_sum(index + 1) - prefix_sum(index);
}

std::size_t FenwickTree::find_by_cumulative(std::uint64_t target) const {
  if (target >= total()) {
    throw std::out_of_range("FenwickTree::find_by_cumulative: target >= total");
  }
  std::size_t pos = 0;
  std::uint64_t remaining = target;
  std::size_t mask = size_ ? std::bit_floor(size_) : 0;
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= size_ && tree_[next] <= remaining) {
      remaining -= tree_[next];
      pos = next;
    }
  }
  return pos;  // slot index (0-based) whose interval contains target
}

std::size_t FenwickTree::find_with_prefix(std::uint64_t target, std::uint64_t& prefix) const {
  if (target >= total()) {
    throw std::out_of_range("FenwickTree::find_with_prefix: target >= total");
  }
  std::size_t pos = 0;
  std::uint64_t remaining = target;
  std::size_t mask = size_ ? std::bit_floor(size_) : 0;
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= size_ && tree_[next] <= remaining) {
      remaining -= tree_[next];
      pos = next;
    }
  }
  prefix = target - remaining;
  return pos;
}

}  // namespace dophy::common
