#pragma once

// Aligned-text and CSV table emission for the benchmark harnesses.  Every
// figure/table binary prints one of these so the reproduced series are easy
// to diff and to paste into a plotting tool.

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dophy::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  /// Any integer type.
  template <typename T>
    requires std::integral<T>
  Table& cell(T value) {
    return cell(std::to_string(value));
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Writes the table with padded columns, a header rule, and an optional
  /// title line.
  void print(std::ostream& os, const std::string& title = {}) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with log lines).
[[nodiscard]] std::string format_double(double value, int precision);

}  // namespace dophy::common
