#include "dophy/common/rng.hpp"

#include <bit>
#include <cmath>

namespace dophy::common {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero words from any seed, but guard regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire-style rejection-free-in-expectation bounded draw.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint32_t Rng::geometric_trials(double p) noexcept {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return ~0u;  // never succeeds; caller must cap
  const double u = 1.0 - next_double();  // in (0,1]
  // P(T > t) = (1-p)^t; invert: T = ceil(log(u)/log(1-p)).
  const double t = std::ceil(std::log(u) / std::log1p(-p));
  if (t < 1.0) return 1;
  if (t > 4.0e9) return ~0u;
  return static_cast<std::uint32_t>(t);
}

double Rng::exponential(double lambda) noexcept {
  const double u = 1.0 - next_double();
  return -std::log(u) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = next_double();
    std::uint32_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= next_double();
    }
    return n;
  }
  const double v = normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace dophy::common
