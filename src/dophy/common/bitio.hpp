#pragma once

// Bit-granular serialization used by every entropy coder in the project.
//
// Bits are written MSB-first within each byte so that the arithmetic coder's
// output is a conventional big-endian binary fraction and prefix codes read
// back in natural order.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dophy::common {

/// Append-only MSB-first bit sink backed by a byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the single bit (0/1).
  void put_bit(bool bit);

  /// Appends the low `count` bits of `value`, most significant first.
  /// `count` must be <= 64.
  void put_bits(std::uint64_t value, unsigned count);

  /// Appends a whole byte (8 bits).
  void put_byte(std::uint8_t byte) { put_bits(byte, 8); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Number of bytes the padded output occupies.
  [[nodiscard]] std::size_t byte_count() const noexcept { return (bit_count_ + 7) / 8; }

  /// Finished buffer; trailing partial byte is zero-padded.  The writer
  /// remains usable (further bits continue after the logical bit count, not
  /// after the padding).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

  /// Moves the buffer out; the writer resets to empty.
  [[nodiscard]] std::vector<std::uint8_t> take();

  void clear() noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// MSB-first bit source over a byte span.  Reading past the end throws
/// `std::out_of_range` — decoders treat truncation as data corruption.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data, std::size_t bit_limit = SIZE_MAX) noexcept;

  /// Reads one bit.
  [[nodiscard]] bool get_bit();

  /// Reads `count` (<= 64) bits, MSB-first, into the low bits of the result.
  [[nodiscard]] std::uint64_t get_bits(unsigned count);

  /// Bits consumed so far.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Bits remaining before the limit.
  [[nodiscard]] std::size_t remaining() const noexcept { return limit_ - pos_; }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= limit_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t limit_;
};

}  // namespace dophy::common
