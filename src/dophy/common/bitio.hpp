#pragma once

// Bit-granular serialization used by every entropy coder in the project.
//
// Bits are written MSB-first within each byte so that the arithmetic coder's
// output is a conventional big-endian binary fraction and prefix codes read
// back in natural order.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dophy::common {

/// Append-only MSB-first bit sink backed by a byte vector.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the single bit (0/1).
  void put_bit(bool bit);

  /// Appends the low `count` bits of `value`, most significant first.
  /// `count` must be <= 64.  Writes a byte at a time, not a bit at a time.
  void put_bits(std::uint64_t value, unsigned count);

  /// Appends a whole byte (8 bits).
  void put_byte(std::uint8_t byte) { put_bits(byte, 8); }

  /// Number of bits written so far.
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Number of bytes the padded output occupies.
  [[nodiscard]] std::size_t byte_count() const noexcept { return (bit_count_ + 7) / 8; }

  /// Finished buffer; trailing partial byte is zero-padded.  The writer
  /// remains usable (further bits continue after the logical bit count, not
  /// after the padding).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

  /// Moves the buffer out; the writer resets to empty.
  [[nodiscard]] std::vector<std::uint8_t> take();

  void clear() noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// MSB-first bit source over a byte span.  Reading past the end throws
/// `std::out_of_range` — decoders treat truncation as data corruption.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data, std::size_t bit_limit = SIZE_MAX) noexcept;

  /// Reads one bit.
  [[nodiscard]] bool get_bit();

  /// Reads `count` (<= 64) bits, MSB-first, into the low bits of the result.
  /// Validates the whole read up front: on a too-short stream it throws
  /// without consuming anything.
  [[nodiscard]] std::uint64_t get_bits(unsigned count);

  /// Bits consumed so far.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Bits remaining before the limit.
  [[nodiscard]] std::size_t remaining() const noexcept { return limit_ - pos_; }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= limit_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t limit_;
};

// The four bit-transfer functions below are the inner loop of every entropy
// coder (the arithmetic coder emits one renormalization bit at a time, the
// header fields move through put_bits/get_bits), so they are defined inline
// and the multi-bit forms move up to a whole byte per step instead of
// looping over put_bit/get_bit.

inline void BitWriter::put_bit(bool bit) {
  const unsigned off = static_cast<unsigned>(bit_count_ % 8);
  if (off == 0) bytes_.push_back(0);
  bytes_.back() =
      static_cast<std::uint8_t>(bytes_.back() | (static_cast<unsigned>(bit) << (7u - off)));
  ++bit_count_;
}

inline void BitWriter::put_bits(std::uint64_t value, unsigned count) {
  if (count > 64) throw std::invalid_argument("BitWriter::put_bits: count > 64");
  while (count > 0) {
    const unsigned off = static_cast<unsigned>(bit_count_ % 8);
    if (off == 0) bytes_.push_back(0);
    const unsigned room = 8u - off;
    const unsigned n = count < room ? count : room;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((value >> (count - n)) & ((1u << n) - 1u));
    bytes_.back() = static_cast<std::uint8_t>(bytes_.back() | (chunk << (room - n)));
    bit_count_ += n;
    count -= n;
  }
}

inline bool BitReader::get_bit() {
  if (pos_ >= limit_) throw std::out_of_range("BitReader: read past end of stream");
  const std::uint8_t byte = data_[pos_ / 8];
  const unsigned shift = 7u - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return ((byte >> shift) & 1u) != 0;
}

inline std::uint64_t BitReader::get_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("BitReader::get_bits: count > 64");
  if (count > limit_ - pos_) throw std::out_of_range("BitReader: read past end of stream");
  std::uint64_t value = 0;
  while (count > 0) {
    const unsigned off = static_cast<unsigned>(pos_ % 8);
    const unsigned avail = 8u - off;
    const unsigned n = count < avail ? count : avail;
    const std::uint8_t chunk =
        static_cast<std::uint8_t>((data_[pos_ / 8] >> (avail - n)) & ((1u << n) - 1u));
    value = (value << n) | chunk;
    pos_ += n;
    count -= n;
  }
  return value;
}

}  // namespace dophy::common
