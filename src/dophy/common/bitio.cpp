#include "dophy/common/bitio.hpp"

#include <algorithm>

namespace dophy::common {

std::vector<std::uint8_t> BitWriter::take() {
  std::vector<std::uint8_t> out = std::move(bytes_);
  clear();
  return out;
}

void BitWriter::clear() noexcept {
  bytes_.clear();
  bit_count_ = 0;
}

BitReader::BitReader(std::span<const std::uint8_t> data, std::size_t bit_limit) noexcept
    : data_(data), limit_(std::min(bit_limit, data.size() * 8)) {}

}  // namespace dophy::common
