#include "dophy/common/bitio.hpp"

#include <algorithm>

namespace dophy::common {

void BitWriter::put_bit(bool bit) {
  const std::size_t byte_index = bit_count_ / 8;
  if (byte_index >= bytes_.size()) bytes_.push_back(0);
  if (bit) {
    const unsigned shift = 7u - static_cast<unsigned>(bit_count_ % 8);
    bytes_[byte_index] = static_cast<std::uint8_t>(bytes_[byte_index] | (1u << shift));
  }
  ++bit_count_;
}

void BitWriter::put_bits(std::uint64_t value, unsigned count) {
  if (count > 64) throw std::invalid_argument("BitWriter::put_bits: count > 64");
  for (unsigned i = count; i-- > 0;) {
    put_bit(((value >> i) & 1u) != 0);
  }
}

std::vector<std::uint8_t> BitWriter::take() {
  std::vector<std::uint8_t> out = std::move(bytes_);
  clear();
  return out;
}

void BitWriter::clear() noexcept {
  bytes_.clear();
  bit_count_ = 0;
}

BitReader::BitReader(std::span<const std::uint8_t> data, std::size_t bit_limit) noexcept
    : data_(data), limit_(std::min(bit_limit, data.size() * 8)) {}

bool BitReader::get_bit() {
  if (pos_ >= limit_) throw std::out_of_range("BitReader: read past end of stream");
  const std::size_t byte_index = pos_ / 8;
  const unsigned shift = 7u - static_cast<unsigned>(pos_ % 8);
  ++pos_;
  return ((data_[byte_index] >> shift) & 1u) != 0;
}

std::uint64_t BitReader::get_bits(unsigned count) {
  if (count > 64) throw std::invalid_argument("BitReader::get_bits: count > 64");
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return value;
}

}  // namespace dophy::common
