#pragma once

// Streaming and batch statistics used by the evaluation harness.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dophy::common {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample by linear interpolation (type-7, the numpy default).
/// `q` in [0,1].  Sorts a copy; fine for evaluation-sized vectors.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Convenience: median.
[[nodiscard]] double median(std::vector<double> values);

/// Empirical CDF evaluation points: returns (x, F(x)) pairs for the sorted
/// sample, suitable for plotting/tabulation.
[[nodiscard]] std::vector<std::pair<double, double>> ecdf(std::vector<double> values);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
[[nodiscard]] double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Shannon entropy (bits per symbol) of a count vector.
[[nodiscard]] double entropy_bits(const std::vector<std::uint64_t>& counts);

/// Kullback-Leibler divergence KL(p || q) in bits from count vectors.
/// Zero-probability q-cells with nonzero p contribute via epsilon smoothing.
[[nodiscard]] double kl_divergence_bits(const std::vector<std::uint64_t>& p,
                                        const std::vector<std::uint64_t>& q);

}  // namespace dophy::common
