#pragma once

// Fenwick (binary indexed) tree over non-negative integer frequencies.
// Backs the adaptive arithmetic-coding model: O(log n) frequency updates,
// prefix sums, and inverse lookups (find the symbol containing a cumulative
// count), which is exactly the decoder's hot path.

#include <cstdint>
#include <vector>

namespace dophy::common {

class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t size);

  /// Rebuilds with `size` zero-frequency slots.
  void reset(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Adds `delta` to slot `index` (may be negative; caller keeps counts >= 0).
  void add(std::size_t index, std::int64_t delta);

  /// Sum of slots [0, index) — i.e. cumulative frequency *below* `index`.
  [[nodiscard]] std::uint64_t prefix_sum(std::size_t index) const;

  /// Sum over all slots.
  [[nodiscard]] std::uint64_t total() const { return prefix_sum(size_); }

  /// Frequency of a single slot.
  [[nodiscard]] std::uint64_t get(std::size_t index) const;

  /// Largest index such that prefix_sum(index) <= target; equivalently the
  /// slot whose cumulative interval [prefix_sum(i), prefix_sum(i+1)) contains
  /// `target`.  Requires target < total().
  [[nodiscard]] std::size_t find_by_cumulative(std::uint64_t target) const;

  /// find_by_cumulative that also reports prefix_sum(result) through
  /// `prefix` — the descent already accumulates it, so callers that need
  /// both (the range decoder's symbol lookup) pay one tree walk instead of
  /// two.  Requires target < total().
  [[nodiscard]] std::size_t find_with_prefix(std::uint64_t target,
                                             std::uint64_t& prefix) const;

 private:
  std::vector<std::uint64_t> tree_;  // 1-based internally
  std::size_t size_ = 0;
};

}  // namespace dophy::common
