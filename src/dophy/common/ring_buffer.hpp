#pragma once

// Growable circular FIFO over contiguous storage.  std::deque allocates and
// frees fixed-size chunk nodes as the window slides, so a steady
// push_back/pop_front workload — exactly what per-node forwarding queues and
// dedupe windows do — churns the allocator forever.  This ring doubles its
// power-of-two backing store on overflow and then never touches the heap
// again, which is what the simulator's zero-allocation steady state needs.

#include <cstddef>
#include <utility>
#include <vector>

namespace dophy::common {

template <typename T>
class RingBuffer {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Pre-grows the backing store to at least `n` slots.
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow(ceil_pow2(n));
  }

  void push_back(T&& value) {
    if (size_ == buf_.size()) grow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  void push_back(const T& value) { push_back(T(value)); }

  [[nodiscard]] T& front() noexcept { return buf_[head_]; }
  [[nodiscard]] const T& front() const noexcept { return buf_[head_]; }

  /// Moves the front element out and advances; container must be non-empty.
  [[nodiscard]] T take_front() {
    T value = std::move(buf_[head_]);
    pop_front();
    return value;
  }

  void pop_front() noexcept {
    buf_[head_] = T{};  // release any resources held by the vacated slot
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() noexcept {
    while (!empty()) pop_front();
    head_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  [[nodiscard]] static std::size_t ceil_pow2(std::size_t n) noexcept {
    std::size_t p = kMinCapacity;
    while (p < n) p *= 2;
    return p;
  }

  void grow(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dophy::common
