#pragma once

// Sliding-window duplicate detector: remembers the last `window` distinct
// keys and answers "seen before?" in O(1) with zero steady-state heap
// allocations.  Replaces the classic unordered_set + FIFO-deque pair, whose
// per-key node allocations and hashing dominated the simulator's packet
// arrival path.
//
// Implementation: open-addressed linear-probe table (load factor <= 0.5)
// over a fixed power-of-2 slot array, plus a ring of insertion order for
// FIFO eviction.  Eviction uses backward-shift deletion, so there are no
// tombstones and probe chains stay short forever.  Exactly the same answers
// as the set-based version: membership over the most recent `window` keys.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dophy/common/ring_buffer.hpp"

namespace dophy::common {

class DedupeWindow {
 public:
  /// Keys equal to kReservedKey must never be inserted (it marks empty
  /// slots).  Callers pack keys into < 64 bits, so the all-ones value is
  /// naturally unreachable.
  static constexpr std::uint64_t kReservedKey = ~0ull;

  /// The table starts tiny and doubles as distinct keys accumulate (same
  /// membership answers either way), so constructing one per node is cheap
  /// and memory tracks the actual working set, not the window bound.
  explicit DedupeWindow(std::size_t window) : window_(window) {
    slots_.assign(kInitialSlots, kReservedKey);
    mask_ = kInitialSlots - 1;
  }

  /// Returns true when `key` is already inside the window; records it (and
  /// evicts the oldest key past capacity) otherwise.
  bool check_and_insert(std::uint64_t key) {
    if ((order_.size() + 1) * 2 > slots_.size()) grow();  // load factor <= 0.5
    std::size_t p = mix(key) & mask_;
    while (slots_[p] != kReservedKey) {
      if (slots_[p] == key) return true;
      p = (p + 1) & mask_;
    }
    slots_[p] = key;
    order_.push_back(key);
    if (order_.size() > window_) erase(order_.take_front());
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  void clear() noexcept {
    for (auto& s : slots_) s = kReservedKey;
    order_.clear();
  }

 private:
  static constexpr std::size_t kInitialSlots = 16;

  /// Doubles the slot array and rehashes.  Eviction caps order_ at window_,
  /// so capacity tops out at the first power of two >= 2 * window.
  void grow() {
    const std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kReservedKey);
    mask_ = slots_.size() - 1;
    for (const std::uint64_t k : old) {
      if (k == kReservedKey) continue;
      std::size_t p = mix(k) & mask_;
      while (slots_[p] != kReservedKey) p = (p + 1) & mask_;
      slots_[p] = k;
    }
  }

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    // splitmix64 finalizer: full-avalanche, cheap enough to inline.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  /// Backward-shift deletion for linear probing: close the gap by sliding
  /// back any later chain member whose ideal slot lies at or before the gap.
  void erase(std::uint64_t key) {
    std::size_t i = mix(key) & mask_;
    while (slots_[i] != key) {
      if (slots_[i] == kReservedKey) return;  // not present (cannot happen)
      i = (i + 1) & mask_;
    }
    std::size_t j = i;
    while (true) {
      slots_[i] = kReservedKey;
      while (true) {
        j = (j + 1) & mask_;
        if (slots_[j] == kReservedKey) return;
        const std::size_t ideal = mix(slots_[j]) & mask_;
        // Movable iff ideal is cyclically outside (i, j].
        const bool stuck = i <= j ? (i < ideal && ideal <= j)
                                  : (i < ideal || ideal <= j);
        if (!stuck) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t window_;
  RingBuffer<std::uint64_t> order_;
};

}  // namespace dophy::common
