#pragma once

// Fixed-size worker pool with a `parallel_for` used to fan Monte-Carlo
// trials across cores.  Each trial owns an independent Rng stream, so the
// results are bitwise identical regardless of worker count or scheduling.
// Tasks are stored as SmallTask (small-buffer-optimized, move-only) instead
// of std::function: typical submit() captures stay inline, and move-only
// captures need no shared_ptr workaround.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "dophy/common/small_task.hpp"

namespace dophy::common {

class ThreadPool {
 public:
  /// Tag selecting the inline (workerless) pool; see inline_executor().
  struct inline_t {};

  /// `worker_count` of 0 means hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  /// Builds a pool with no workers: submit() runs tasks on the calling
  /// thread.  Lets pool-shaped code degrade to serial execution without a
  /// second code path (and without deadlocking when nested inside another
  /// pool's worker).
  explicit ThreadPool(inline_t) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues a task (runs it inline on a workerless pool).  Tasks must not
  /// throw; wrap fallible work yourself.  After shutdown() the call is a
  /// defined no-op: the task is destroyed without running.
  void submit(SmallTask task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Drains queued tasks and joins the workers.  Idempotent; the destructor
  /// calls it.  Afterwards submit() drops tasks and wait_idle() returns
  /// immediately — shutdown is a state, not a use-after-free.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<SmallTask> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool; blocks until done.
/// body must be safe to invoke concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Convenience: shared process-wide pool sized to the machine.
ThreadPool& global_pool();

/// Shared workerless pool: submit()/parallel_for run on the calling thread.
/// Pass where a ThreadPool* is expected to force serial execution — e.g. for
/// trial batches inside code that already runs on a pool worker.
ThreadPool& inline_executor();

}  // namespace dophy::common
