#pragma once

// Integer-valued histogram with a censoring tail bucket.  Used both as the
// empirical symbol distribution at the Dophy sink and as a general counting
// utility in tests/benches.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dophy::common {

/// Histogram over {0, 1, ..., max_value} plus an overflow bucket counting
/// values > max_value.
class Histogram {
 public:
  explicit Histogram(std::uint32_t max_value = 63);

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;
  void merge(const Histogram& other);
  void clear() noexcept;

  [[nodiscard]] std::uint32_t max_value() const noexcept { return max_value_; }
  [[nodiscard]] std::uint64_t count(std::uint64_t value) const noexcept;
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Buckets 0..max_value (overflow excluded).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

  [[nodiscard]] double mean() const noexcept;
  /// Smallest v with CDF(v) >= q, scanning buckets (overflow maps to
  /// max_value + 1).
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Compact textual rendering for logs ("0:12 1:40 2:7 >3:1").
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint32_t max_value_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dophy::common
