#include "dophy/common/logging.hpp"

#include <cstdio>

namespace dophy::common {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
// Invoked under sink_mutex_, so no extra lock is needed here.
void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()), message.data());
}
}  // namespace

Logger::Logger() : sink_(default_sink) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink ? std::move(sink) : Sink(default_sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(level, message);
}

void Logger::logf(LogLevel level, const char* fmt, ...) {
  if (!enabled(level)) return;
  // Format outside the lock so slow formatting never serializes threads.
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_(level, buffer);
}

}  // namespace dophy::common
