#include "dophy/common/histogram.hpp"

#include <sstream>
#include <stdexcept>

namespace dophy::common {

Histogram::Histogram(std::uint32_t max_value)
    : max_value_(max_value), buckets_(static_cast<std::size_t>(max_value) + 1, 0) {}

void Histogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  if (value <= max_value_) {
    buckets_[static_cast<std::size_t>(value)] += weight;
  } else {
    overflow_ += weight;
  }
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.max_value_ != max_value_) {
    throw std::invalid_argument("Histogram::merge: bucket layout mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::clear() noexcept {
  for (auto& b : buckets_) b = 0;
  overflow_ = 0;
  total_ = 0;
}

std::uint64_t Histogram::count(std::uint64_t value) const noexcept {
  return value <= max_value_ ? buckets_[static_cast<std::size_t>(value)] : overflow_;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(buckets_[i]);
  }
  // Overflow values contribute at least max_value_+1 each; use that floor.
  sum += static_cast<double>(overflow_) * static_cast<double>(max_value_ + 1);
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) return i;
  }
  return static_cast<std::uint64_t>(max_value_) + 1;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) os << ' ';
    os << i << ':' << buckets_[i];
    first = false;
  }
  if (overflow_ > 0) {
    if (!first) os << ' ';
    os << '>' << max_value_ << ':' << overflow_;
  }
  return os.str();
}

}  // namespace dophy::common
