#include "dophy/common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dophy::common {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error("Table::cell before Table::row");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::cell: row already full");
  }
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(double value, int precision) { return cell(format_double(value, precision)); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  if (!title.empty()) os << "## " << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char ch : v) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      if (c < cells.size()) os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace dophy::common
