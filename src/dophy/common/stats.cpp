#include "dophy/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dophy::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.959964 * sem(); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double h = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

std::vector<std::pair<double, double>> ecdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> average_ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(average_ranks(x), average_ranks(y));
}

double entropy_bits(const std::vector<std::uint64_t>& counts) {
  const std::uint64_t total = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double kl_divergence_bits(const std::vector<std::uint64_t>& p,
                          const std::vector<std::uint64_t>& q) {
  if (p.size() != q.size()) throw std::invalid_argument("kl_divergence_bits: size mismatch");
  const double tp = static_cast<double>(
      std::accumulate(p.begin(), p.end(), std::uint64_t{0}));
  const double tq = static_cast<double>(
      std::accumulate(q.begin(), q.end(), std::uint64_t{0}));
  if (tp == 0.0 || tq == 0.0) return 0.0;
  constexpr double kEps = 1e-9;
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = static_cast<double>(p[i]) / tp;
    if (pi <= 0.0) continue;
    const double qi = std::max(static_cast<double>(q[i]) / tq, kEps);
    kl += pi * std::log2(pi / qi);
  }
  return kl;
}

}  // namespace dophy::common
