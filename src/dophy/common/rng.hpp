#pragma once

// Deterministic pseudo-random number generation for simulation.
//
// We deliberately avoid <random> engines/distributions: their outputs are not
// guaranteed to be identical across standard-library implementations, and
// reproducible simulation traces are a hard requirement for the evaluation
// harness.  Rng is xoshiro256** seeded via SplitMix64, with a small set of
// exactly-specified distribution helpers.

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace dophy::common {

/// xoshiro256** generator with deterministic, implementation-independent
/// distribution helpers.  Cheap to copy; each simulation entity owns a
/// `fork()`ed stream so entity order never perturbs other entities' draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.  Inline: this and the two helpers below are the
  /// simulator's per-transmission draws (loss trials, jitter), hot enough
  /// that the call overhead was visible in whole-run profiles.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Geometric "number of trials until first success" (support {1,2,...})
  /// with success probability `p` in (0,1].  Draws one uniform and inverts
  /// the CDF, so it costs one RNG call regardless of the outcome.
  [[nodiscard]] std::uint32_t geometric_trials(double p) noexcept;

  /// Exponential with rate `lambda` > 0.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Standard normal via Box-Muller (one value per call, no caching, so the
  /// stream is position-independent).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Poisson with mean `lambda` (Knuth for small lambda, normal approx for
  /// large).
  [[nodiscard]] std::uint32_t poisson(double lambda) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent stream; mutates this stream (consumes one draw).
  [[nodiscard]] Rng fork() noexcept;

  /// std::uniform_random_bit_generator interface (for interop only).
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }
  std::uint64_t operator()() noexcept { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// SplitMix64 step; exposed for seeding schemes and tests.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace dophy::common
