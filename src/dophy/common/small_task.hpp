#pragma once

// Small-buffer-optimized move-only callable, the pool-side counterpart of the
// event engine's typed thunks: a ThreadPool task is stored inline in a fixed
// buffer (no heap traffic for the common capture sizes) and falls back to a
// heap box only for oversized captures.  std::function is the wrong tool for
// a task queue — it requires copyability (so move-only captures need a
// shared_ptr dance) and its type erasure allocates for modest captures.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dophy::common {

class SmallTask {
 public:
  /// Inline capture budget: two cache lines minus the vtable-ish header.
  /// Sized so a parallel_for chunk closure (a few pointers + counters) stays
  /// inline.
  static constexpr std::size_t kInlineBytes = 56;

  SmallTask() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallTask> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallTask(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  SmallTask(SmallTask&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  SmallTask& operator=(SmallTask&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallTask(const SmallTask&) = delete;
  SmallTask& operator=(const SmallTask&) = delete;

  ~SmallTask() { reset(); }

  /// True when a callable is held.
  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the callable (must hold one).
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Moves the callable from `src` storage into `dst` storage and destroys
    /// the source.  Inline captures relocate by move-construction; boxed
    /// ones just carry the pointer over.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace dophy::common
