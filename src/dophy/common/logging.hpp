#pragma once

// Minimal leveled logger.  Simulation code logs through this so benches can
// silence it; tests can capture it.  Not a general-purpose logging framework
// by design — a single global sink with a level threshold is all the project
// needs.
//
// Thread-safety: the level is an atomic (trials on the pool read it
// constantly), and the sink is swapped and invoked under a mutex, so a
// concurrent set_sink never races a log call and sink invocations are
// serialized.  Consequently a sink must not call back into the logger.

#include <atomic>
#include <cstdarg>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace dophy::common {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// Replaces the sink (default writes to stderr). Passing nullptr restores
  /// the default sink.  Safe to call while other threads are logging; any
  /// in-flight log call completes with the old sink first.
  void set_sink(Sink sink);

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view message);

  /// printf-style formatted logging (GCC 12 on this toolchain lacks
  /// <format>; attribute keeps format/argument mismatches compile errors).
  [[gnu::format(printf, 3, 4)]] void logf(LogLevel level, const char* fmt, ...);

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex sink_mutex_;  ///< guards sink_ swap and invocation
  Sink sink_;
};

#define DOPHY_LOG(level_, ...)                                              \
  do {                                                                      \
    auto& logger_ = ::dophy::common::Logger::instance();                    \
    if (logger_.enabled(level_)) logger_.logf((level_), __VA_ARGS__);       \
  } while (0)

#define DOPHY_TRACE(...) DOPHY_LOG(::dophy::common::LogLevel::kTrace, __VA_ARGS__)
#define DOPHY_DEBUG(...) DOPHY_LOG(::dophy::common::LogLevel::kDebug, __VA_ARGS__)
#define DOPHY_INFO(...) DOPHY_LOG(::dophy::common::LogLevel::kInfo, __VA_ARGS__)
#define DOPHY_WARN(...) DOPHY_LOG(::dophy::common::LogLevel::kWarn, __VA_ARGS__)
#define DOPHY_ERROR(...) DOPHY_LOG(::dophy::common::LogLevel::kError, __VA_ARGS__)

}  // namespace dophy::common
